//! Parallel per-rail progress pipeline (the sharded-queue engine).
//!
//! The single-threaded runtimes drive the engine through one big
//! `Mutex<Engine>` held across transport I/O, so two rails can never
//! make progress simultaneously — the multi-rail aggregated-bandwidth
//! claim ends up bottlenecked by lock hold time rather than the wire.
//! This module decomposes that lock into a sharded, mostly lock-free
//! pipeline:
//!
//! ```text
//! app threads ── MPSC submission queue ──►┐
//!                                         │  scheduler thread
//! TX worker r ──┐                         ▼  (short critical section)
//! RX worker r ──┴─ per-rail completion ─► drain batches → progress →
//!                  queues (MPSC)          strategy decisions
//!                                         │
//!                      per-rail SPSC      ▼
//! TX worker r ◄─────── outboxes ◄──────── publish TxDecisions
//!  (slow transport write OUTSIDE any shared lock)
//! ```
//!
//! * [`MpscQueue`] — submissions and completions: many producers, one
//!   consumer (the scheduler), a `Mutex<VecDeque>` whose critical
//!   section is a push or a batch drain, never I/O.
//! * [`spsc`] — a bounded lock-free ring with unique producer/consumer
//!   handles; the per-rail outbox the scheduler publishes into and the
//!   rail's TX worker pops from.
//! * [`ParallelHub`] — ties it together: id pre-allocation for the
//!   submission queue, the batched scheduler pass (one amortized
//!   critical section running completions, timers, health, calibration
//!   feeding and strategy decisions), and per-outbox condvar wakeups so
//!   each rail's TX worker sleeps on *its own* signal instead of a
//!   single global condvar.
//!
//! The hub is transport-agnostic the same way [`super::Engine`] is:
//! `transport-tcp` workers write sockets, `transport-mem` workers sleep
//! out the shaped wire time — both outside the engine lock. Nothing in
//! this module runs unless [`crate::EngineConfig::parallel`] is set;
//! the single-threaded path stays bit-identical.

use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use nmad_model::RailId;
use nmad_wire::{ConnId, PacketFrame};
use parking_lot::{Condvar, Mutex};

use crate::config::OverloadConfig;
use crate::driver::{TxDecision, TxToken};
use crate::error::SubmitError;
use crate::obs::{Event, EventKind};
use crate::request::{RecvId, SendId};
use crate::stats::OverloadStats;

use super::Engine;

/// Outbox capacity per rail. The engine issues at most one in-flight
/// injection per rail, so depth rarely exceeds 1 today; the headroom is
/// for future per-rail pipelining and costs a few hundred bytes.
pub const OUTBOX_CAPACITY: usize = 8;

/// Upper bound on a scheduler idle wait: keeps shutdown responsive even
/// if a wakeup is lost outside the signal lock.
pub const MAX_IDLE_WAIT: Duration = Duration::from_millis(2);
/// Lower bound on a scheduler idle wait (don't busy-spin on imminent
/// deadlines).
pub const MIN_IDLE_WAIT: Duration = Duration::from_micros(20);
/// How long the shutdown drain keeps trying to flush already-queued
/// transmit work (e.g. a retransmission armed before shutdown whose
/// outbox is full because the worker died first) before giving up. The
/// drain exits as soon as the work flushes; the grace only bounds the
/// pathological case.
pub const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_millis(500);

// ---------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------

/// Pad to a cache line so the producer's tail and the consumer's head
/// never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct SpscInner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot to pop (owned by the consumer, read by the producer).
    head: CachePadded<AtomicUsize>,
    /// Next slot to push (owned by the producer, read by the consumer).
    tail: CachePadded<AtomicUsize>,
}

// Safety: slots are handed off producer→consumer through the
// release/acquire pair on `tail` (and back through `head`); a slot is
// only ever touched by the side that owns it at that instant.
unsafe impl<T: Send> Send for SpscInner<T> {}
unsafe impl<T: Send> Sync for SpscInner<T> {}

impl<T> Drop for SpscInner<T> {
    fn drop(&mut self) {
        // Single-threaded by now (last Arc owner): drop whatever the
        // consumer never popped.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            unsafe { (*self.buf[i % self.cap].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Unique producer handle of an [`spsc`] ring.
pub struct SpscProducer<T> {
    inner: Arc<SpscInner<T>>,
}

/// Unique consumer handle of an [`spsc`] ring.
pub struct SpscConsumer<T> {
    inner: Arc<SpscInner<T>>,
}

/// Build a bounded lock-free single-producer/single-consumer ring.
/// Uniqueness is enforced by the type system: the handles are not
/// `Clone`, and push/pop take `&mut self`.
pub fn spsc<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    assert!(capacity > 0, "spsc ring needs capacity");
    let buf = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(SpscInner {
        buf,
        cap: capacity,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        SpscProducer {
            inner: inner.clone(),
        },
        SpscConsumer { inner },
    )
}

impl<T: Send> SpscProducer<T> {
    /// Push a value; returns it back when the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        let head = self.inner.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.inner.cap {
            return Err(v);
        }
        unsafe { (*self.inner.buf[tail % self.inner.cap].get()).write(v) };
        self.inner
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Entries currently queued (racy by nature; exact from the
    /// producer's side).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        let head = self.inner.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a push would currently succeed.
    pub fn has_space(&self) -> bool {
        self.len() < self.inner.cap
    }
}

impl<T: Send> SpscConsumer<T> {
    /// Pop the oldest value, if any.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = unsafe { (*self.inner.buf[head % self.inner.cap].get()).assume_init_read() };
        self.inner
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Entries currently queued (exact from the consumer's side).
    pub fn len(&self) -> usize {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// MPSC queue
// ---------------------------------------------------------------------

/// Many-producer/single-consumer queue for submissions and completions.
///
/// "Mostly lock-free" the way the pipeline needs it: the mutex guards a
/// push or a batch drain — a few pointer moves — never transport I/O or
/// strategy work, so producers contend for nanoseconds, not for the
/// duration of a socket write.
pub struct MpscQueue<T> {
    q: Mutex<VecDeque<T>>,
    depth: AtomicUsize,
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        MpscQueue {
            q: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
        }
    }
}

impl<T> MpscQueue<T> {
    /// Append one entry; returns the queue depth after the push.
    pub fn push(&self, v: T) -> usize {
        let mut q = self.q.lock();
        q.push_back(v);
        let d = q.len();
        self.depth.store(d, Ordering::Release);
        d
    }

    /// Move every queued entry into `out`, preserving FIFO order.
    /// Returns how many were drained.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut q = self.q.lock();
        let n = q.len();
        out.extend(q.drain(..));
        self.depth.store(0, Ordering::Release);
        n
    }

    /// Entries currently queued (lock-free read of the depth gauge).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Wakeup signal
// ---------------------------------------------------------------------

/// Edge-triggered wakeup: a boolean under a mutex plus a condvar. Kicks
/// that land while the waiter is busy are remembered (the flag stays
/// set), so no wakeup is ever lost to the check-then-wait race.
pub struct WorkSignal {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Default for WorkSignal {
    fn default() -> Self {
        WorkSignal {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }
}

impl WorkSignal {
    /// Signal the waiter: sets the flag and notifies.
    pub fn kick(&self) {
        *self.flag.lock() = true;
        self.cv.notify_one();
    }

    /// Wait until kicked or `timeout` elapses; consumes the pending kick.
    /// Returns true when a kick arrived (before or during the wait).
    pub fn wait(&self, timeout: Duration) -> bool {
        let mut pending = self.flag.lock();
        if !*pending {
            self.cv.wait_for(&mut pending, timeout);
        }
        let fired = *pending;
        *pending = false;
        fired
    }
}

// ---------------------------------------------------------------------
// Queue payloads
// ---------------------------------------------------------------------

/// An application-side operation queued for the scheduler. The id is
/// pre-allocated from an atomic counter *before* the push: drain order
/// across producer threads need not match allocation order, so the id
/// must travel with the op (see [`Engine::submit_send_with_id`]).
pub enum AppOp {
    /// `submit_send` payload.
    Send {
        /// Logical channel.
        conn: ConnId,
        /// Message segments.
        segments: Vec<Bytes>,
        /// Pre-allocated send id.
        id: SendId,
    },
    /// `post_recv` payload.
    Recv {
        /// Logical channel.
        conn: ConnId,
        /// Pre-allocated recv id.
        id: RecvId,
    },
}

/// A wire-side event queued by a TX or RX worker for the scheduler's
/// next batched drain.
pub enum Completion {
    /// A TX worker finished injecting the frame for `token`.
    TxDone {
        /// Rail the injection ran on.
        rail: usize,
        /// Token from the published [`TxDecision`].
        token: TxToken,
    },
    /// An RX worker pulled a complete frame off the wire.
    RxFrame {
        /// Arrival rail.
        rail: usize,
        /// The received frame (refcounted; not flattened).
        frame: PacketFrame,
    },
}

// ---------------------------------------------------------------------
// Outbox: SPSC ring + per-rail wakeup
// ---------------------------------------------------------------------

/// Scheduler-side handle of one rail's outbox: pushes wake that rail's
/// TX worker through its own condvar — not a global one.
pub struct OutboxSender {
    ring: SpscProducer<TxDecision>,
    signal: Arc<WorkSignal>,
    /// Extra wake the reactor installs: publishing TX work must also
    /// tickle the epoll worker that owns this rail's socket (an
    /// eventfd), since that worker sleeps in `epoll_wait`, not on the
    /// condvar. None for the thread-per-rail runtime.
    wake_hook: Option<Arc<dyn Fn() + Send + Sync>>,
}

/// TX-worker-side handle of one rail's outbox.
pub struct OutboxReceiver {
    ring: SpscConsumer<TxDecision>,
    signal: Arc<WorkSignal>,
}

/// Build one rail's outbox pair.
pub fn outbox(capacity: usize) -> (OutboxSender, OutboxReceiver) {
    let (p, c) = spsc(capacity);
    let signal = Arc::new(WorkSignal::default());
    (
        OutboxSender {
            ring: p,
            signal: signal.clone(),
            wake_hook: None,
        },
        OutboxReceiver { ring: c, signal },
    )
}

impl OutboxSender {
    /// Publish a decision and wake the rail's TX worker. Returns the
    /// decision back when the ring is full so the scheduler can requeue
    /// it without a clone — the large `Err` variant is the point.
    #[allow(clippy::result_large_err)]
    pub fn push(&mut self, d: TxDecision) -> Result<(), TxDecision> {
        self.ring.push(d)?;
        self.signal.kick();
        if let Some(hook) = &self.wake_hook {
            hook();
        }
        Ok(())
    }

    /// Install an extra wake called after every successful push (the
    /// reactor's eventfd tickle). Replaces any previous hook.
    pub fn set_wake_hook(&mut self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.wake_hook = Some(hook);
    }

    /// Frames currently queued for the worker.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// True when a push would currently succeed.
    pub fn has_space(&self) -> bool {
        self.ring.has_space()
    }
}

impl OutboxReceiver {
    /// Pop the next published decision without blocking.
    pub fn pop(&mut self) -> Option<TxDecision> {
        self.ring.pop()
    }

    /// True when no decision is currently published (the reactor's
    /// shutdown drain checks this before giving up its grace period).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Pop, sleeping on this rail's own condvar up to `timeout` when the
    /// outbox is empty.
    pub fn pop_wait(&mut self, timeout: Duration) -> Option<TxDecision> {
        if let Some(d) = self.ring.pop() {
            return Some(d);
        }
        self.signal.wait(timeout);
        self.ring.pop()
    }

    /// Wake the worker sleeping on this outbox (shutdown path).
    pub fn kick(&self) {
        self.signal.kick();
    }
}

// ---------------------------------------------------------------------
// The hub
// ---------------------------------------------------------------------

/// Result of one [`ParallelHub::scheduler_pass`].
#[derive(Debug, Default)]
pub struct SchedPass {
    /// App ops + completions drained this pass.
    pub drained: usize,
    /// Decisions published into outboxes this pass.
    pub published: usize,
    /// True when the pass did anything (drained, published, or timer
    /// work fired).
    pub progressed: bool,
    /// Engine's next timer deadline, captured inside the lock so the
    /// idle wait can be sized without re-locking.
    pub next_deadline_ns: Option<u64>,
    /// True when the engine still holds queued transmit work (control or
    /// backlog) after the refill — captured inside the lock so the
    /// shutdown drain knows whether anything is left to flush.
    pub tx_work_pending: bool,
}

/// Reusable scratch for the scheduler loop: drained ops and completions
/// land here so steady-state passes allocate nothing.
#[derive(Default)]
pub struct SchedScratch {
    ops: Vec<AppOp>,
    completions: Vec<Completion>,
    /// Overload counters as of the previous pass, for delta-based
    /// shed/backpressure obs events.
    last_overload: OverloadStats,
}

/// Lock-free syscall amortization tally: the transport's TX workers add
/// (vectored-write calls, frames moved) pairs, RX workers add (read
/// calls, frames carved). Lives on the hub because the workers must not
/// take the engine lock on the hot path; the scheduler mirrors a
/// snapshot into [`crate::stats::SyscallStats`] each pass.
#[derive(Debug, Default)]
pub struct SyscallCounters {
    tx_calls: AtomicU64,
    tx_frames: AtomicU64,
    rx_calls: AtomicU64,
    rx_frames: AtomicU64,
}

impl SyscallCounters {
    /// Record one batch of TX work: `calls` kernel crossings moved
    /// `frames` frames.
    pub fn add_tx(&self, calls: u64, frames: u64) {
        self.tx_calls.fetch_add(calls, Ordering::Relaxed);
        self.tx_frames.fetch_add(frames, Ordering::Relaxed);
    }

    /// Record one batch of RX work: `calls` reads yielded `frames`
    /// complete frames.
    pub fn add_rx(&self, calls: u64, frames: u64) {
        self.rx_calls.fetch_add(calls, Ordering::Relaxed);
        self.rx_frames.fetch_add(frames, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for stats mirroring.
    pub fn snapshot(&self) -> crate::stats::SyscallStats {
        crate::stats::SyscallStats {
            tx_calls: self.tx_calls.load(Ordering::Relaxed),
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            rx_calls: self.rx_calls.load(Ordering::Relaxed),
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
        }
    }
}

/// Shared state of the parallel pipeline: the engine behind its (now
/// short-held) mutex, the submission queue, per-rail completion queues,
/// and the scheduler's wakeup signal. One hub per endpoint.
pub struct ParallelHub {
    engine: Mutex<Engine>,
    /// App-visible completion wakeups (`send_complete`/`try_recv`
    /// waiters); paired with `engine`.
    app_cv: Condvar,
    submissions: MpscQueue<AppOp>,
    completions: Vec<MpscQueue<Completion>>,
    sched: WorkSignal,
    shutdown: AtomicBool,
    next_send_id: AtomicU64,
    next_recv_id: AtomicU64,
    /// Packets rejected on receive (decode/CRC/reassembly errors).
    pub rx_errors: AtomicU64,
    /// Transport I/O errors reported by workers.
    pub io_errors: AtomicU64,
    /// Per-worker flight-recorder shards deposited at worker exit,
    /// merged with the engine ring at export.
    shards: Mutex<Vec<crate::obs::Event>>,
    /// Overload limits, copied from the engine config at construction so
    /// the admission boundary never needs the engine lock.
    overload: OverloadConfig,
    /// Sends admitted but not yet locally completed, per tenant
    /// (connection). Only maintained when
    /// [`OverloadConfig::max_tenant_inflight`] is nonzero.
    tenant_inflight: Mutex<HashMap<ConnId, u64>>,
    /// Outstanding-pool-buffer gauge mirrored out of the engine by each
    /// scheduler pass, so the watermark check is a lock-free load.
    pool_outstanding: AtomicU64,
    /// Syscall amortization counters fed by the transport's TX/RX
    /// workers outside any lock; each scheduler pass snapshots them
    /// into [`crate::stats::SyscallStats`] via `Engine::note_syscalls`.
    pub syscalls: SyscallCounters,
    queue_rejections: AtomicU64,
    admission_rejections: AtomicU64,
    watermark_rejections: AtomicU64,
    shutdown_rejections: AtomicU64,
    /// Snapshot source for reactor event-loop telemetry, installed by
    /// the reactor transport at construction. Each scheduler pass calls
    /// it (lock-free atomics on the reactor side) and mirrors the
    /// result into [`crate::stats::ReactorStats`] via
    /// `Engine::note_reactor`. None for non-reactor runtimes.
    reactor_source: Mutex<Option<Box<dyn Fn() -> crate::stats::ReactorStats + Send>>>,
}

impl ParallelHub {
    /// Wrap an engine (its config should have
    /// [`crate::EngineConfig::parallel`] set) and build one outbox per
    /// rail. The senders go to the scheduler thread, the receivers to
    /// the per-rail TX workers.
    pub fn new(engine: Engine) -> (Arc<Self>, Vec<OutboxSender>, Vec<OutboxReceiver>) {
        let n = engine.rails().len();
        let overload = engine.config().overload;
        let hub = Arc::new(ParallelHub {
            engine: Mutex::new(engine),
            app_cv: Condvar::new(),
            submissions: MpscQueue::default(),
            completions: (0..n).map(|_| MpscQueue::default()).collect(),
            sched: WorkSignal::default(),
            shutdown: AtomicBool::new(false),
            next_send_id: AtomicU64::new(0),
            next_recv_id: AtomicU64::new(0),
            rx_errors: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            shards: Mutex::new(Vec::new()),
            overload,
            tenant_inflight: Mutex::new(HashMap::new()),
            pool_outstanding: AtomicU64::new(0),
            syscalls: SyscallCounters::default(),
            queue_rejections: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            watermark_rejections: AtomicU64::new(0),
            shutdown_rejections: AtomicU64::new(0),
            reactor_source: Mutex::new(None),
        });
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = outbox(OUTBOX_CAPACITY);
            senders.push(s);
            receivers.push(r);
        }
        (hub, senders, receivers)
    }

    /// The engine mutex, for app-side waits and cold-path snapshots.
    /// Hot-path producers must go through [`ParallelHub::submit_send`] /
    /// [`ParallelHub::push_completion`] instead.
    pub fn engine(&self) -> &Mutex<Engine> {
        &self.engine
    }

    /// Condvar the scheduler notifies after passes that completed app
    /// work; pairs with [`ParallelHub::engine`].
    pub fn app_cv(&self) -> &Condvar {
        &self.app_cv
    }

    /// Queue a send without touching the engine lock. The id is handed
    /// out immediately; the op reaches the backlog on the scheduler's
    /// next pass.
    ///
    /// Errors only on shutdown — a submit after
    /// [`ParallelHub::begin_shutdown`] is refused explicitly instead of
    /// panicking or silently vanishing into a queue nobody will drain.
    /// Overload limits are NOT enforced here; callers that want
    /// backpressure use [`ParallelHub::try_submit_send`].
    pub fn submit_send(&self, conn: ConnId, segments: Vec<Bytes>) -> Result<SendId, SubmitError> {
        if self.is_shutdown() {
            self.shutdown_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Shutdown);
        }
        self.charge_tenant(conn);
        Ok(self.enqueue_send(conn, segments))
    }

    /// [`ParallelHub::submit_send`] with the full overload policy: the
    /// submission is refused with [`SubmitError::WouldBlock`] when the
    /// submission queue is at its configured depth, the buffer pool is
    /// above its watermark, or the tenant is over its admission quota
    /// (see [`OverloadConfig`]). Never blocks and never queues on
    /// rejection — the caller decides whether to retry, shed, or slow
    /// down.
    pub fn try_submit_send(
        &self,
        conn: ConnId,
        segments: Vec<Bytes>,
    ) -> Result<SendId, SubmitError> {
        if self.is_shutdown() {
            self.shutdown_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Shutdown);
        }
        let depth_cap = self.overload.max_submission_depth;
        if depth_cap != 0 && self.submissions.len() >= depth_cap {
            self.queue_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::WouldBlock);
        }
        let watermark = self.overload.pool_watermark;
        if watermark != 0 && self.pool_outstanding.load(Ordering::Relaxed) > watermark as u64 {
            self.watermark_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::WouldBlock);
        }
        let quota = self.overload.max_tenant_inflight;
        if quota != 0 {
            let mut tenants = self.tenant_inflight.lock();
            let inflight = tenants.entry(conn).or_insert(0);
            if *inflight >= quota as u64 {
                self.admission_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::WouldBlock);
            }
            *inflight += 1;
        }
        Ok(self.enqueue_send(conn, segments))
    }

    fn enqueue_send(&self, conn: ConnId, segments: Vec<Bytes>) -> SendId {
        let id = SendId(self.next_send_id.fetch_add(1, Ordering::Relaxed));
        self.submissions.push(AppOp::Send { conn, segments, id });
        self.sched.kick();
        id
    }

    /// Count an admitted send against its tenant without enforcing the
    /// quota (the legacy submit path still accounts, so the scheduler's
    /// completion credits balance).
    fn charge_tenant(&self, conn: ConnId) {
        if self.overload.max_tenant_inflight != 0 {
            *self.tenant_inflight.lock().entry(conn).or_insert(0) += 1;
        }
    }

    /// Queue a receive without touching the engine lock. Errors only on
    /// shutdown, like [`ParallelHub::submit_send`].
    pub fn post_recv(&self, conn: ConnId) -> Result<RecvId, SubmitError> {
        if self.is_shutdown() {
            self.shutdown_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Shutdown);
        }
        let id = RecvId(self.next_recv_id.fetch_add(1, Ordering::Relaxed));
        self.submissions.push(AppOp::Recv { conn, id });
        self.sched.kick();
        Ok(id)
    }

    /// Snapshot of the admission boundary's rejection counters.
    pub fn overload_stats(&self) -> OverloadStats {
        OverloadStats {
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            admission_rejections: self.admission_rejections.load(Ordering::Relaxed),
            watermark_rejections: self.watermark_rejections.load(Ordering::Relaxed),
            shutdown_rejections: self.shutdown_rejections.load(Ordering::Relaxed),
        }
    }

    /// Sends admitted and not yet locally completed for `conn` (0 when
    /// tenant tracking is disabled).
    pub fn tenant_inflight(&self, conn: ConnId) -> u64 {
        self.tenant_inflight.lock().get(&conn).copied().unwrap_or(0)
    }

    /// Push a wire-side completion from a worker and wake the scheduler.
    pub fn push_completion(&self, rail: usize, c: Completion) {
        self.completions[rail].push(c);
        self.sched.kick();
    }

    /// Wake the scheduler (e.g. after a manual retransmit).
    pub fn kick_sched(&self) {
        self.sched.kick();
    }

    /// Install the reactor telemetry source. Subsequent scheduler
    /// passes snapshot it into the engine's stats (see
    /// [`crate::stats::ReactorStats`]); callers that need a snapshot
    /// outside a pass use [`ParallelHub::reactor_snapshot`].
    pub fn set_reactor_source(&self, source: Box<dyn Fn() -> crate::stats::ReactorStats + Send>) {
        *self.reactor_source.lock() = Some(source);
    }

    /// Current reactor telemetry, straight from the installed source
    /// (default when no reactor is attached).
    pub fn reactor_snapshot(&self) -> crate::stats::ReactorStats {
        self.reactor_source
            .lock()
            .as_ref()
            .map(|s| s())
            .unwrap_or_default()
    }

    /// Ask every thread of the pipeline to wind down.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sched.kick();
    }

    /// True once [`ParallelHub::begin_shutdown`] ran.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Deposit a worker's flight-recorder shard at worker exit.
    pub fn deposit_shard(&self, events: Vec<crate::obs::Event>) {
        self.shards.lock().extend(events);
    }

    /// Engine ring + every deposited worker shard, merged by timestamp.
    pub fn merged_events(&self) -> Vec<crate::obs::Event> {
        let engine_events = self.engine.lock().recorder().events();
        let shards = self.shards.lock();
        crate::obs::merge_events(&[&engine_events, &shards])
    }

    /// One batched scheduler pass: drain app submissions, drain every
    /// rail's completion queue, run the engine's timer work, then refill
    /// the outboxes from strategy decisions. This is the only place the
    /// engine lock is taken on the parallel hot path, and it is held for
    /// exactly this amortized batch — the lock-hold histogram in
    /// `EngineStats` proves it.
    pub fn scheduler_pass(
        &self,
        now_ns: u64,
        outboxes: &mut [OutboxSender],
        scratch: &mut SchedScratch,
    ) -> SchedPass {
        let mut pass = SchedPass::default();
        scratch.ops.clear();
        scratch.completions.clear();
        self.submissions.drain_into(&mut scratch.ops);

        let t0 = Instant::now();
        let mut eng = self.engine.lock();
        for op in scratch.ops.drain(..) {
            pass.drained += 1;
            match op {
                AppOp::Send { conn, segments, id } => eng.submit_send_with_id(conn, segments, id),
                AppOp::Recv { conn, id } => eng.post_recv_with_id(conn, id),
            }
        }
        let mut completions_drained = 0u64;
        for q in &self.completions {
            q.drain_into(&mut scratch.completions);
        }
        for c in scratch.completions.drain(..) {
            pass.drained += 1;
            completions_drained += 1;
            match c {
                Completion::TxDone { rail, token } => {
                    // Tokens are issued by this hub's own engine; an
                    // unknown one can only mean worker/scheduler state
                    // diverged, which the tests would catch.
                    let completed = eng
                        .on_tx_done(RailId(rail), token)
                        .expect("token issued by this hub");
                    if self.overload.max_tenant_inflight != 0 && !completed.is_empty() {
                        let mut tenants = self.tenant_inflight.lock();
                        for id in &completed {
                            if let Some(conn) = eng.send_conn(*id) {
                                if let Some(n) = tenants.get_mut(&conn) {
                                    *n = n.saturating_sub(1);
                                }
                            }
                        }
                    }
                }
                Completion::RxFrame { rail, frame } => {
                    if eng.on_frame(RailId(rail), &frame).is_err() {
                        self.rx_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if !self.is_shutdown() {
            // During shutdown drain we stop arming new timer work: an
            // unacked send with no live peer would otherwise re-queue a
            // retransmission every RTO and the drain would never settle.
            // Already-queued frames still flush below.
            let timer_out = eng.progress(now_ns);
            if !timer_out.retransmitted.is_empty() || timer_out.control_enqueued {
                pass.progressed = true;
            }
        }
        for (r, ob) in outboxes.iter_mut().enumerate() {
            while ob.has_space() {
                match eng.next_tx(RailId(r)) {
                    Ok(Some(d)) => {
                        pass.published += 1;
                        // Full is impossible: has_space() was checked and
                        // this thread is the only producer.
                        ob.push(d).expect("outbox has space");
                    }
                    Ok(None) => break,
                    Err(_) => {
                        self.io_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            eng.note_outbox_depth(ob.len() as u64);
        }
        eng.note_sched_pass(t0.elapsed().as_nanos() as u64, completions_drained);
        pass.next_deadline_ns = eng.next_deadline_ns();
        pass.tx_work_pending = eng.has_tx_work();

        // Mirror the admission boundary into the engine-side stats and
        // flight recorder, and refresh the watermark input. Delta-based:
        // one obs event per pass per rejection kind, not per rejection.
        let overload = self.overload_stats();
        let last = scratch.last_overload;
        let shed_deltas = [
            (overload.queue_rejections - last.queue_rejections, 0u64),
            (
                overload.admission_rejections - last.admission_rejections,
                1u64,
            ),
            (
                overload.watermark_rejections - last.watermark_rejections,
                2u64,
            ),
        ];
        for (delta, aux) in shed_deltas {
            if delta > 0 {
                eng.recorder_mut()
                    .record(Event::new(now_ns, EventKind::Shed).size(delta).aux(aux));
            }
        }
        let shutdown_delta = overload.shutdown_rejections - last.shutdown_rejections;
        if shutdown_delta > 0 {
            eng.recorder_mut().record(
                Event::new(now_ns, EventKind::Backpressure)
                    .size(shutdown_delta)
                    .aux(1),
            );
        }
        eng.note_overload(overload);
        eng.note_syscalls(self.syscalls.snapshot());
        if let Some(source) = self.reactor_source.lock().as_ref() {
            eng.note_reactor(source());
        }
        scratch.last_overload = overload;
        self.pool_outstanding
            .store(eng.stats().datapath.pool_outstanding, Ordering::Relaxed);
        // Fold this pass's events (including the Shed/Backpressure
        // deltas above) into the telemetry windows while the lock is
        // still held. `progress` already folded once, but during
        // shutdown drain it is skipped and this keeps the series alive.
        eng.observe_clock(now_ns);
        eng.fold_telemetry();
        drop(eng);

        if pass.drained > 0 || pass.published > 0 {
            pass.progressed = true;
            // Completions may have finished sends/receives app threads
            // are waiting on.
            self.app_cv.notify_all();
        }
        pass
    }

    /// The scheduler thread body: run passes, sleeping on the scheduler
    /// signal between them (bounded by the engine's next timer
    /// deadline). `epoch` anchors the engine's monotonic clock. Returns
    /// once shutdown is requested and the pipeline has quiesced — call
    /// it after the TX/RX workers have been joined so their final
    /// completions get drained.
    pub fn run_scheduler(&self, mut outboxes: Vec<OutboxSender>, epoch: Instant) {
        let mut scratch = SchedScratch::default();
        let mut shutdown_since: Option<Instant> = None;
        loop {
            let now_ns = epoch.elapsed().as_nanos() as u64;
            let pass = self.scheduler_pass(now_ns, &mut outboxes, &mut scratch);
            if self.is_shutdown() {
                let since = *shutdown_since.get_or_insert_with(Instant::now);
                let queues_empty =
                    self.submissions.is_empty() && self.completions.iter().all(MpscQueue::is_empty);
                // Drain: give pending TX work (queued retransmissions
                // included) a bounded grace window to flush through the
                // outboxes. Work that cannot flush — e.g. frames for a
                // rail whose worker already exited — does not hold the
                // scheduler hostage past the grace period.
                let drained = !pass.tx_work_pending || since.elapsed() >= SHUTDOWN_DRAIN_GRACE;
                if queues_empty && !pass.progressed && drained {
                    break;
                }
                if !pass.progressed {
                    self.sched.wait(Duration::from_millis(1));
                }
                continue;
            }
            if pass.progressed {
                continue;
            }
            let mut wait = MAX_IDLE_WAIT;
            if let Some(deadline_ns) = pass.next_deadline_ns {
                wait = wait.min(Duration::from_nanos(deadline_ns.saturating_sub(now_ns)));
            }
            self.sched.wait(wait.max(MIN_IDLE_WAIT));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::strategy::StrategyKind;
    use nmad_model::platform;
    use std::sync::atomic::AtomicU32;
    use std::thread;

    // -----------------------------------------------------------------
    // SPSC
    // -----------------------------------------------------------------

    #[test]
    fn spsc_fifo_and_capacity() {
        let (mut p, mut c) = spsc::<u32>(4);
        assert!(c.pop().is_none());
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert_eq!(p.push(99), Err(99), "full ring rejects");
        assert_eq!(p.len(), 4);
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert!(c.pop().is_none());
        // Wrap around several times.
        for round in 0..10u32 {
            p.push(round).unwrap();
            assert_eq!(c.pop(), Some(round));
        }
    }

    #[test]
    fn spsc_drops_unpopped_values() {
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, mut c) = spsc::<D>(8);
        for _ in 0..5 {
            p.push(D).unwrap();
        }
        drop(c.pop()); // one popped and dropped
        drop(p);
        drop(c); // ring drops the remaining four
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    /// Cross-thread stress: every pushed value arrives exactly once, in
    /// order, across ring wrap-arounds — no lost or duplicated frames.
    #[test]
    fn spsc_cross_thread_no_loss_no_dup_fifo() {
        const N: u64 = 50_000;
        let (mut p, mut c) = spsc::<u64>(16);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            // Single-core CI: yield so the consumer runs.
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expect, "FIFO order violated");
                expect += 1;
            } else {
                thread::yield_now();
            }
        }
        assert!(c.pop().is_none(), "no duplicated frames after the last");
        producer.join().unwrap();
    }

    // -----------------------------------------------------------------
    // MPSC
    // -----------------------------------------------------------------

    /// Multi-producer stress: per-producer FIFO holds and nothing is
    /// lost or duplicated across batch drains.
    #[test]
    fn mpsc_per_producer_fifo_no_loss() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 5_000;
        let q = Arc::new(MpscQueue::<(u64, u64)>::default());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|pid| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..PER {
                        q.push((pid, i));
                    }
                })
            })
            .collect();
        let mut seen = vec![0u64; PRODUCERS as usize];
        let mut total = 0u64;
        let mut buf = Vec::new();
        while total < PRODUCERS * PER {
            buf.clear();
            if q.drain_into(&mut buf) == 0 {
                thread::yield_now();
            }
            for &(pid, i) in &buf {
                assert_eq!(
                    seen[pid as usize], i,
                    "producer {pid} out of order or lost an entry"
                );
                seen[pid as usize] += 1;
                total += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
        assert!(seen.iter().all(|&s| s == PER));
    }

    #[test]
    fn mpsc_depth_gauge_tracks() {
        let q = MpscQueue::<u8>::default();
        assert_eq!(q.push(1), 1);
        assert_eq!(q.push(2), 2);
        assert_eq!(q.len(), 2);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.len(), 0);
    }

    // -----------------------------------------------------------------
    // WorkSignal / outbox wakeups
    // -----------------------------------------------------------------

    #[test]
    fn kick_before_wait_is_not_lost() {
        let s = WorkSignal::default();
        s.kick();
        // The kick predates the wait: wait must return immediately and
        // report it (the lost-wakeup race the old global condvar had).
        let t0 = Instant::now();
        assert!(s.wait(Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
        // Consumed: a second wait times out.
        assert!(!s.wait(Duration::from_millis(1)));
    }

    #[test]
    fn outbox_push_wakes_the_waiting_worker() {
        let (mut tx, mut rx) = outbox(4);
        let worker = thread::spawn(move || rx.pop_wait(Duration::from_secs(10)));
        // Give the worker time to park on its condvar.
        thread::sleep(Duration::from_millis(20));
        let d = TxDecision {
            token: TxToken(7),
            frame: PacketFrame::empty(),
            mode: nmad_model::TxMode::Pio,
            copied_bytes: 0,
            control: false,
        };
        let t0 = Instant::now();
        tx.push(d).unwrap();
        let got = worker.join().unwrap().expect("worker woken with frame");
        assert_eq!(got.token, TxToken(7));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "wakeup must be prompt, not a timeout expiry"
        );
    }

    // -----------------------------------------------------------------
    // Hub: end-to-end over the sharded pipeline (no transport)
    // -----------------------------------------------------------------

    type HubSide = (Arc<ParallelHub>, Vec<OutboxSender>, Vec<OutboxReceiver>);

    fn hub_pair() -> (HubSide, HubSide) {
        let mk = || {
            let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
            cfg.parallel = true;
            let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
            eng.conn_open();
            ParallelHub::new(eng)
        };
        (mk(), mk())
    }

    /// Drive two hubs by hand: scheduler passes publish into outboxes,
    /// a fake "wire" moves frames to the peer's completion queues.
    #[test]
    fn hub_round_trip_through_queues() {
        let ((hub_a, mut ob_a, mut rx_a), (hub_b, mut ob_b, mut rx_b)) = hub_pair();
        let conn = 0;
        let send = hub_a
            .submit_send(conn, vec![Bytes::from(vec![0xAB; 100_000])])
            .unwrap();
        let recv = hub_b.post_recv(conn).unwrap();
        let mut scratch_a = SchedScratch::default();
        let mut scratch_b = SchedScratch::default();
        for step in 0..10_000 {
            let now = step as u64 * 1_000;
            hub_a.scheduler_pass(now, &mut ob_a, &mut scratch_a);
            hub_b.scheduler_pass(now, &mut ob_b, &mut scratch_b);
            let mut moved = false;
            for (rail, rx) in rx_a.iter_mut().enumerate() {
                while let Some(d) = rx.pop() {
                    moved = true;
                    hub_a.push_completion(
                        rail,
                        Completion::TxDone {
                            rail,
                            token: d.token,
                        },
                    );
                    hub_b.push_completion(
                        rail,
                        Completion::RxFrame {
                            rail,
                            frame: d.frame,
                        },
                    );
                }
            }
            for (rail, rx) in rx_b.iter_mut().enumerate() {
                while let Some(d) = rx.pop() {
                    moved = true;
                    hub_b.push_completion(
                        rail,
                        Completion::TxDone {
                            rail,
                            token: d.token,
                        },
                    );
                    hub_a.push_completion(
                        rail,
                        Completion::RxFrame {
                            rail,
                            frame: d.frame,
                        },
                    );
                }
            }
            let done = {
                let eng = hub_a.engine().lock();
                eng.send_complete(send)
            };
            if done && !moved {
                break;
            }
        }
        assert!(hub_a.engine().lock().send_complete(send));
        let msg = hub_b
            .engine()
            .lock()
            .try_recv(recv)
            .expect("message delivered through the sharded pipeline");
        assert_eq!(msg.segments[0].len(), 100_000);
        // The scheduler recorded its critical sections.
        let stats = hub_a.engine().lock().stats().clone();
        assert!(stats.obs.lock_hold_ns.count() > 0, "lock-hold histogram");
        assert!(
            stats.obs.completion_batch.count() > 0,
            "completion-batch histogram"
        );
        assert!(stats.obs.outbox_depth.count() > 0, "outbox-depth histogram");
    }

    /// Clean shutdown drains all queues: ops submitted right before
    /// shutdown still reach the engine before the scheduler exits.
    #[test]
    fn shutdown_drains_queues() {
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.parallel = true;
        let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
        eng.conn_open();
        let (hub, senders, receivers) = ParallelHub::new(eng);
        let epoch = Instant::now();
        let sched = {
            let hub = hub.clone();
            thread::spawn(move || hub.run_scheduler(senders, epoch))
        };
        let ids: Vec<SendId> = (0..50)
            .map(|i| {
                hub.submit_send(0, vec![Bytes::from(vec![i as u8; 64])])
                    .unwrap()
            })
            .collect();
        hub.begin_shutdown();
        for r in &receivers {
            r.kick();
        }
        sched.join().unwrap();
        // Every submission made it into the engine (ids known), and the
        // submission queue is empty.
        let eng = hub.engine().lock();
        assert!(
            hub.submissions.is_empty(),
            "shutdown must drain submissions"
        );
        // Sends aren't complete (no wire), but they must exist: a
        // submitted-but-unknown id would return false from send_complete
        // AND not be retransmittable — check via the backlog instead.
        assert!(eng.has_tx_work(), "drained submissions reached the backlog");
        drop(eng);
        drop(ids);
        drop(receivers);
    }

    /// The ids handed out by the hub before the scheduler drains the
    /// queue stay stable: what the app got back is what the engine sees.
    #[test]
    fn preallocated_ids_survive_queue_reordering() {
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.parallel = true;
        let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
        eng.conn_open();
        let (hub, mut senders, _receivers) = ParallelHub::new(eng);
        // Concurrent submitters racing for ids.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let hub = hub.clone();
                thread::spawn(move || {
                    (0..100)
                        .map(|i| {
                            hub.submit_send(0, vec![Bytes::from(vec![t as u8; 32 + i])])
                                .unwrap()
                        })
                        .collect::<Vec<SendId>>()
                })
            })
            .collect();
        let ids: Vec<SendId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let mut scratch = SchedScratch::default();
        hub.scheduler_pass(0, &mut senders, &mut scratch);
        // All 400 ids distinct and all known to the engine (not done,
        // but tracked — send_complete returns false, not a panic; the
        // real proof is that a later with_id submit would reject reuse).
        let mut sorted: Vec<u64> = ids.iter().map(|i| i.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 400, "ids must be unique across producers");
        let eng = hub.engine().lock();
        assert_eq!(eng.stats().obs.seg_size.count(), 400, "all sends landed");
    }

    // -----------------------------------------------------------------
    // Overload policy and shutdown semantics
    // -----------------------------------------------------------------

    #[test]
    fn submit_after_shutdown_errors() {
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.parallel = true;
        let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
        eng.conn_open();
        let (hub, _senders, _receivers) = ParallelHub::new(eng);
        hub.begin_shutdown();
        assert_eq!(
            hub.submit_send(0, vec![Bytes::from_static(b"late")]),
            Err(SubmitError::Shutdown)
        );
        assert_eq!(
            hub.try_submit_send(0, vec![Bytes::from_static(b"late")]),
            Err(SubmitError::Shutdown)
        );
        assert_eq!(hub.post_recv(0), Err(SubmitError::Shutdown));
        assert_eq!(hub.overload_stats().shutdown_rejections, 3);
        assert!(
            hub.submissions.is_empty(),
            "rejected ops must not be queued"
        );
    }

    #[test]
    fn try_submit_would_block_on_depth() {
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.parallel = true;
        cfg.overload.max_submission_depth = 1;
        let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
        eng.conn_open();
        let (hub, _senders, _receivers) = ParallelHub::new(eng);
        // No scheduler running, so the first admitted op sits in the
        // queue and the second hits the depth cap.
        hub.try_submit_send(0, vec![Bytes::from_static(b"first")])
            .unwrap();
        assert_eq!(
            hub.try_submit_send(0, vec![Bytes::from_static(b"second")]),
            Err(SubmitError::WouldBlock)
        );
        assert_eq!(hub.overload_stats().queue_rejections, 1);
        // The legacy path ignores the cap (backwards-compatible).
        hub.submit_send(0, vec![Bytes::from_static(b"third")])
            .unwrap();
    }

    /// Per-tenant admission: a tenant at its in-flight quota is refused,
    /// and completing its send returns the credit.
    #[test]
    fn tenant_admission_credits_on_completion() {
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.parallel = true;
        cfg.overload.max_tenant_inflight = 1;
        let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
        eng.conn_open();
        eng.conn_open();
        let (hub, mut senders, mut receivers) = ParallelHub::new(eng);
        hub.try_submit_send(0, vec![Bytes::from_static(b"one")])
            .unwrap();
        assert_eq!(
            hub.try_submit_send(0, vec![Bytes::from_static(b"two")]),
            Err(SubmitError::WouldBlock),
            "tenant 0 is at quota"
        );
        assert_eq!(hub.overload_stats().admission_rejections, 1);
        // Another tenant is unaffected by tenant 0's quota.
        hub.try_submit_send(1, vec![Bytes::from_static(b"other")])
            .unwrap();
        assert_eq!(hub.tenant_inflight(0), 1);
        // Drive tenant 0's send to local completion by hand: publish,
        // then feed the TxDone back (unacked mode completes at tx_done).
        let mut scratch = SchedScratch::default();
        hub.scheduler_pass(0, &mut senders, &mut scratch);
        let mut done = 0;
        for (rail, rx) in receivers.iter_mut().enumerate() {
            while let Some(d) = rx.pop() {
                hub.push_completion(
                    rail,
                    Completion::TxDone {
                        rail,
                        token: d.token,
                    },
                );
                done += 1;
            }
        }
        assert!(done >= 1, "the eager send must have been published");
        hub.scheduler_pass(1_000, &mut senders, &mut scratch);
        assert_eq!(hub.tenant_inflight(0), 0, "completion returns the credit");
        hub.try_submit_send(0, vec![Bytes::from_static(b"three")])
            .unwrap();
    }

    /// Shutdown with an un-acked send in flight: queued retransmissions
    /// drain instead of hanging the scheduler, and the drain completes
    /// within the grace window even though the peer never acks.
    #[test]
    fn shutdown_drains_inflight_retransmissions() {
        let mut cfg = EngineConfig::with_strategy(StrategyKind::Greedy);
        cfg.parallel = true;
        cfg.acked = true;
        cfg.health = crate::health::HealthConfig {
            initial_rto_ns: 5_000_000,
            min_rto_ns: 2_000_000,
            max_rto_ns: 50_000_000,
            ..Default::default()
        };
        let mut eng = Engine::new(cfg, platform::paper_platform().rails, vec![]);
        eng.conn_open();
        let (hub, senders, receivers) = ParallelHub::new(eng);
        let epoch = Instant::now();
        let sched = {
            let hub = hub.clone();
            thread::spawn(move || hub.run_scheduler(senders, epoch))
        };
        // Lossy TX workers: complete transmissions but drop every frame
        // on the floor, so acks never arrive and RTOs keep firing.
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rail, mut rx)| {
                let hub = hub.clone();
                let done = done.clone();
                thread::spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        if let Some(d) = rx.pop_wait(Duration::from_millis(2)) {
                            hub.push_completion(
                                rail,
                                Completion::TxDone {
                                    rail,
                                    token: d.token,
                                },
                            );
                        }
                    }
                })
            })
            .collect();
        hub.submit_send(0, vec![Bytes::from(vec![0xEE; 256])])
            .unwrap();
        // Wait until at least one retransmission has been queued.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if hub.engine().lock().stats().retransmits >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "retransmission never fired");
            thread::sleep(Duration::from_millis(1));
        }
        hub.begin_shutdown();
        // The scheduler must exit on its own: queued retransmissions
        // flush through the outboxes, no new ones are armed, and the
        // grace window bounds the wait.
        let join_deadline = Instant::now() + SHUTDOWN_DRAIN_GRACE + Duration::from_secs(10);
        while !sched.is_finished() {
            assert!(
                Instant::now() < join_deadline,
                "scheduler failed to drain and exit after shutdown"
            );
            thread::sleep(Duration::from_millis(1));
        }
        sched.join().unwrap();
        done.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        assert!(hub.submissions.is_empty(), "submissions drained");
        let eng = hub.engine().lock();
        assert!(
            eng.stats().retransmits >= 1,
            "the scenario actually exercised retransmission"
        );
    }
}
