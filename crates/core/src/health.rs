//! Per-rail link health: RTT estimation, failure detection and probing.
//!
//! The transmit layer feeds this tracker with acknowledgement round-trip
//! samples and retransmission timeouts; the engine consults it to steer
//! the strategies away from failing rails and to decide when a rail that
//! went dark should be probed and reinstated.
//!
//! Each rail moves through a small state machine:
//!
//! ```text
//!           consecutive timeouts                 more timeouts
//!   Up ───────────────────────────► Suspect ───────────────────► Down
//!    ▲                                 │                           │
//!    │ probe answered / ack arrived    │                           │ probe
//!    └─────────────────────────────────┘                           │ timer
//!    ▲                                                             ▼
//!    └──────────────── probe answered ────────────────────── Probing
//! ```
//!
//! `Up` and `Suspect` rails remain schedulable; `Down` and `Probing`
//! rails carry only probe traffic until a probe comes back.
//!
//! Retransmission timing follows the classic TCP estimator: Jacobson
//! SRTT/RTTVAR smoothing for the round-trip estimate, Karn's rule (no
//! samples from retransmitted attempts) and exponential backoff on
//! timeout, clamped to a configurable window.

use nmad_model::RailId;

/// Reachability state of one rail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RailState {
    /// Healthy: scheduled normally.
    Up,
    /// Recent timeouts observed; still scheduled, but being probed.
    Suspect,
    /// Declared unreachable: data traffic avoids it, probes are sent
    /// periodically to detect recovery.
    Down,
    /// A reinstatement probe is outstanding on a down rail.
    Probing,
}

impl RailState {
    /// Dense index (0 Up, 1 Suspect, 2 Down, 3 Probing), used for dwell
    /// arrays and event encoding.
    pub fn index(self) -> usize {
        match self {
            RailState::Up => 0,
            RailState::Suspect => 1,
            RailState::Down => 2,
            RailState::Probing => 3,
        }
    }

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            RailState::Up => "Up",
            RailState::Suspect => "Suspect",
            RailState::Down => "Down",
            RailState::Probing => "Probing",
        }
    }
}

/// Thresholds and timers for [`HealthTracker`]. All times are in
/// nanoseconds of the runtime's clock (wall clock for the threaded
/// transports, virtual time for the simulator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthConfig {
    /// Retransmission timeout used before any RTT sample exists.
    pub initial_rto_ns: u64,
    /// Lower clamp for the adaptive RTO.
    pub min_rto_ns: u64,
    /// Upper clamp for the adaptive RTO (and its exponential backoff).
    pub max_rto_ns: u64,
    /// Consecutive timeouts that move a rail `Up -> Suspect`.
    pub suspect_after: u32,
    /// Consecutive timeouts that move a rail to `Down`.
    pub down_after: u32,
    /// Delay between reinstatement probes while a rail is `Down`.
    pub probe_interval_ns: u64,
    /// How long to wait for a probe's pong before counting a timeout.
    pub probe_timeout_ns: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            initial_rto_ns: 50_000_000, // 50 ms: generous for threaded runs
            min_rto_ns: 1_000_000,
            max_rto_ns: 2_000_000_000,
            suspect_after: 1,
            down_after: 3,
            probe_interval_ns: 100_000_000,
            probe_timeout_ns: 50_000_000,
        }
    }
}

impl HealthConfig {
    /// Panic on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.min_rto_ns > 0, "min RTO must be positive");
        assert!(
            self.min_rto_ns <= self.max_rto_ns,
            "min RTO must not exceed max RTO"
        );
        assert!(
            (self.min_rto_ns..=self.max_rto_ns).contains(&self.initial_rto_ns),
            "initial RTO must lie within [min, max]"
        );
        assert!(self.suspect_after >= 1, "suspect threshold must be >= 1");
        assert!(
            self.down_after >= self.suspect_after,
            "down threshold must not precede suspect threshold"
        );
        assert!(
            self.probe_interval_ns > 0,
            "probe interval must be positive"
        );
        assert!(self.probe_timeout_ns > 0, "probe timeout must be positive");
    }
}

/// Health record of a single rail.
#[derive(Clone, Debug)]
pub struct RailHealth {
    state: RailState,
    /// Smoothed RTT (Jacobson), `None` until the first sample.
    srtt_ns: Option<u64>,
    /// RTT variance estimate (Jacobson).
    rttvar_ns: u64,
    /// Timeouts since the last success on this rail.
    consecutive_timeouts: u32,
    /// Earliest time the next reinstatement probe may go out (`Down`).
    next_probe_ns: u64,
    /// When the outstanding probe was issued (`Suspect`/`Probing`).
    probe_sent_ns: u64,
    /// A probe is outstanding (suppresses duplicates).
    probe_outstanding: bool,
    /// Last time positive evidence (ack, pong) arrived for this rail.
    last_ok_ns: Option<u64>,
    /// Every state this rail has been in, in order (starts at `Up`).
    history: Vec<RailState>,
    /// When each history entry was entered (parallel to `history`).
    history_ns: Vec<u64>,
}

impl RailHealth {
    fn new() -> Self {
        RailHealth {
            state: RailState::Up,
            srtt_ns: None,
            rttvar_ns: 0,
            consecutive_timeouts: 0,
            next_probe_ns: 0,
            probe_sent_ns: 0,
            probe_outstanding: false,
            last_ok_ns: None,
            history: vec![RailState::Up],
            history_ns: vec![0],
        }
    }

    /// Current state.
    pub fn state(&self) -> RailState {
        self.state
    }

    /// Smoothed round-trip estimate, if any sample arrived yet.
    pub fn srtt_ns(&self) -> Option<u64> {
        self.srtt_ns
    }

    /// RTT variance estimate (Jacobson), zero until the first sample.
    pub fn rttvar_ns(&self) -> u64 {
        self.rttvar_ns
    }

    /// Full state history, oldest first (starts with [`RailState::Up`]).
    pub fn history(&self) -> &[RailState] {
        &self.history
    }

    /// State history with entry timestamps, oldest first.
    pub fn history_stamped(&self) -> impl Iterator<Item = (u64, RailState)> + '_ {
        self.history_ns
            .iter()
            .copied()
            .zip(self.history.iter().copied())
    }

    /// Total time spent in each state up to `now_ns`, indexed by
    /// [`RailState::index`].
    pub fn dwell_ns(&self, now_ns: u64) -> [u64; 4] {
        let mut dwell = [0u64; 4];
        for (i, (&t, &s)) in self.history_ns.iter().zip(self.history.iter()).enumerate() {
            let end = self
                .history_ns
                .get(i + 1)
                .copied()
                .unwrap_or_else(|| now_ns.max(t));
            dwell[s.index()] += end.saturating_sub(t);
        }
        dwell
    }

    fn transition(&mut self, to: RailState, now_ns: u64) -> bool {
        if self.state == to {
            return false;
        }
        self.state = to;
        self.history.push(to);
        self.history_ns.push(now_ns);
        true
    }
}

/// A state change reported back to the engine for accounting/failover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// The rail that changed state.
    pub rail: RailId,
    /// Its new state.
    pub to: RailState,
}

/// A point-in-time snapshot of one rail's health estimators, for CLI
/// display (`nmad faults`) and the observability exporters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RailTelemetry {
    /// Current reachability state.
    pub state: RailState,
    /// Smoothed RTT estimate, if any sample arrived.
    pub srtt_ns: Option<u64>,
    /// RTT variance estimate.
    pub rttvar_ns: u64,
    /// Current adaptive retransmission timeout.
    pub rto_ns: u64,
    /// Time spent in each state so far, indexed by [`RailState::index`].
    pub dwell_ns: [u64; 4],
    /// State changes observed (history length minus the initial `Up`).
    pub transitions: usize,
}

/// Tracks the health of every rail of an engine.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    cfg: HealthConfig,
    rails: Vec<RailHealth>,
}

impl HealthTracker {
    /// A tracker with all `n` rails starting `Up`.
    pub fn new(cfg: HealthConfig, n: usize) -> Self {
        cfg.validate();
        HealthTracker {
            cfg,
            rails: (0..n).map(|_| RailHealth::new()).collect(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Per-rail record.
    pub fn rail(&self, rail: RailId) -> &RailHealth {
        &self.rails[rail.0]
    }

    /// Current state of every rail.
    pub fn states(&self) -> Vec<RailState> {
        self.rails.iter().map(|r| r.state).collect()
    }

    /// True when `rail` may carry data traffic (`Up` or `Suspect`).
    pub fn usable(&self, rail: RailId) -> bool {
        matches!(self.rails[rail.0].state, RailState::Up | RailState::Suspect)
    }

    /// True when no rail at all is usable (the engine then falls back to
    /// sending control packets on whatever rail is offered).
    pub fn none_usable(&self) -> bool {
        (0..self.rails.len()).all(|r| !self.usable(RailId(r)))
    }

    /// EWMA weight the online calibrator applies to a transfer-time sample
    /// from `rail`. A rail under suspicion (or still proving itself after
    /// an outage) yields quarter-weight samples — its timings are tainted
    /// by whatever got it suspected — and a `Down` rail yields none, so a
    /// dying rail cannot poison the split tables on its way out.
    pub fn calibration_weight(&self, rail: RailId) -> f64 {
        match self.rails[rail.0].state {
            RailState::Up => 1.0,
            RailState::Suspect | RailState::Probing => 0.25,
            RailState::Down => 0.0,
        }
    }

    /// Record positive evidence (an ack or pong touching `rail`) at
    /// `now_ns`. Used to exonerate rails from collective blame: a rail
    /// that demonstrably delivered since an attempt started is almost
    /// certainly not the one that lost that attempt's packets.
    pub fn note_ok(&mut self, rail: RailId, now_ns: u64) {
        let r = &mut self.rails[rail.0];
        r.last_ok_ns = Some(r.last_ok_ns.map_or(now_ns, |t| t.max(now_ns)));
    }

    /// True when positive evidence arrived for `rail` at or after `t_ns`.
    pub fn ok_since(&self, rail: RailId, t_ns: u64) -> bool {
        self.rails[rail.0].last_ok_ns.is_some_and(|t| t >= t_ns)
    }

    /// Adaptive retransmission timeout for `rail`:
    /// `SRTT + 4·RTTVAR`, clamped, or the configured initial RTO before
    /// the first sample.
    pub fn rto_ns(&self, rail: RailId) -> u64 {
        let r = &self.rails[rail.0];
        match r.srtt_ns {
            Some(srtt) => (srtt + 4 * r.rttvar_ns).clamp(self.cfg.min_rto_ns, self.cfg.max_rto_ns),
            None => self.cfg.initial_rto_ns,
        }
    }

    /// A conservative RTO covering every currently-usable rail (used to
    /// arm per-message retransmission timers that may span rails).
    pub fn rto_hint_ns(&self) -> u64 {
        (0..self.rails.len())
            .filter(|&r| self.usable(RailId(r)))
            .map(|r| self.rto_ns(RailId(r)))
            .max()
            .unwrap_or(self.cfg.initial_rto_ns)
    }

    /// Snapshot of `rail`'s estimators and dwell times as of `now_ns`.
    pub fn telemetry(&self, rail: RailId, now_ns: u64) -> RailTelemetry {
        let r = &self.rails[rail.0];
        RailTelemetry {
            state: r.state,
            srtt_ns: r.srtt_ns,
            rttvar_ns: r.rttvar_ns,
            rto_ns: self.rto_ns(rail),
            dwell_ns: r.dwell_ns(now_ns),
            transitions: r.history.len() - 1,
        }
    }

    /// Feed one round-trip sample (Jacobson/Karn: callers must not sample
    /// retransmitted attempts). Also counts as a success.
    pub fn on_rtt_sample(&mut self, rail: RailId, rtt_ns: u64, now_ns: u64) -> Option<Transition> {
        let r = &mut self.rails[rail.0];
        match r.srtt_ns {
            None => {
                r.srtt_ns = Some(rtt_ns);
                r.rttvar_ns = rtt_ns / 2;
            }
            Some(srtt) => {
                // RFC 6298 with alpha = 1/8, beta = 1/4.
                let err = srtt.abs_diff(rtt_ns);
                r.rttvar_ns = (3 * r.rttvar_ns + err) / 4;
                r.srtt_ns = Some((7 * srtt + rtt_ns) / 8);
            }
        }
        self.on_success(rail, now_ns)
    }

    /// A transmission involving `rail` was acknowledged (no RTT sample
    /// available, e.g. a retransmitted attempt under Karn's rule).
    pub fn on_success(&mut self, rail: RailId, now_ns: u64) -> Option<Transition> {
        let r = &mut self.rails[rail.0];
        r.consecutive_timeouts = 0;
        r.probe_outstanding = false;
        match r.state {
            RailState::Up => None,
            // Any ack on the rail proves liveness; recover immediately.
            RailState::Suspect | RailState::Down | RailState::Probing => {
                r.transition(RailState::Up, now_ns);
                Some(Transition {
                    rail,
                    to: RailState::Up,
                })
            }
        }
    }

    /// A retransmission timeout is blamed on `rail`.
    pub fn on_timeout(&mut self, rail: RailId, now_ns: u64) -> Option<Transition> {
        let cfg = self.cfg;
        let r = &mut self.rails[rail.0];
        if matches!(r.state, RailState::Down | RailState::Probing) {
            return None; // already out of service
        }
        r.consecutive_timeouts = r.consecutive_timeouts.saturating_add(1);
        let to = if r.consecutive_timeouts >= cfg.down_after {
            RailState::Down
        } else if r.consecutive_timeouts >= cfg.suspect_after {
            RailState::Suspect
        } else {
            return None;
        };
        if to == RailState::Down {
            r.next_probe_ns = now_ns.saturating_add(cfg.probe_interval_ns);
            r.probe_outstanding = false;
        }
        r.transition(to, now_ns).then_some(Transition { rail, to })
    }

    /// Rails that should get a probe now: `Down` rails whose probe timer
    /// expired, and `Suspect` rails with no probe outstanding (probing a
    /// suspect rail quickly separates "rail dead" from "message stalled
    /// for another reason").
    pub fn probe_due(&self, rail: RailId, now_ns: u64) -> bool {
        let r = &self.rails[rail.0];
        match r.state {
            RailState::Down => now_ns >= r.next_probe_ns,
            RailState::Suspect => !r.probe_outstanding,
            _ => false,
        }
    }

    /// Record that a probe was queued on `rail`. A `Down` rail moves to
    /// `Probing`; a `Suspect` rail stays schedulable while its probe is
    /// out.
    pub fn on_probe_sent(&mut self, rail: RailId, now_ns: u64) -> Option<Transition> {
        let r = &mut self.rails[rail.0];
        r.probe_sent_ns = now_ns;
        r.probe_outstanding = true;
        if r.state == RailState::Down && r.transition(RailState::Probing, now_ns) {
            return Some(Transition {
                rail,
                to: RailState::Probing,
            });
        }
        None
    }

    /// True when the outstanding probe on `rail` went unanswered past the
    /// probe timeout.
    pub fn probe_expired(&self, rail: RailId, now_ns: u64) -> bool {
        let r = &self.rails[rail.0];
        r.probe_outstanding && now_ns >= r.probe_sent_ns.saturating_add(self.cfg.probe_timeout_ns)
    }

    /// The outstanding probe on `rail` timed out. A `Probing` rail drops
    /// back to `Down` (and re-arms the probe timer); a `Suspect` rail
    /// counts the lost probe as one more timeout.
    pub fn on_probe_timeout(&mut self, rail: RailId, now_ns: u64) -> Option<Transition> {
        let interval = self.cfg.probe_interval_ns;
        let r = &mut self.rails[rail.0];
        r.probe_outstanding = false;
        match r.state {
            RailState::Probing => {
                r.next_probe_ns = now_ns.saturating_add(interval);
                r.transition(RailState::Down, now_ns);
                Some(Transition {
                    rail,
                    to: RailState::Down,
                })
            }
            RailState::Suspect => self.on_timeout(rail, now_ns),
            _ => None,
        }
    }

    /// A probe pong came back on `rail`: the rail is alive.
    pub fn on_probe_ok(&mut self, rail: RailId, rtt_ns: u64, now_ns: u64) -> Option<Transition> {
        self.on_rtt_sample(rail, rtt_ns, now_ns)
    }

    /// The next instant at which this rail needs attention (a probe to
    /// send or an outstanding probe to expire), if any. Lets runtimes
    /// size their idle sleeps.
    pub fn next_event_ns(&self, rail: RailId) -> Option<u64> {
        let r = &self.rails[rail.0];
        match r.state {
            RailState::Down => Some(r.next_probe_ns),
            RailState::Probing => Some(r.probe_sent_ns.saturating_add(self.cfg.probe_timeout_ns)),
            RailState::Suspect => Some(if r.probe_outstanding {
                r.probe_sent_ns.saturating_add(self.cfg.probe_timeout_ns)
            } else {
                0 // probe due immediately
            }),
            RailState::Up => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            initial_rto_ns: 100,
            min_rto_ns: 10,
            max_rto_ns: 10_000,
            suspect_after: 1,
            down_after: 3,
            probe_interval_ns: 500,
            probe_timeout_ns: 200,
        }
    }

    #[test]
    fn rto_starts_at_initial_and_tracks_samples() {
        let mut h = HealthTracker::new(cfg(), 2);
        assert_eq!(h.rto_ns(RailId(0)), 100);
        h.on_rtt_sample(RailId(0), 80, 0);
        // First sample: srtt = 80, rttvar = 40 -> rto = 80 + 160 = 240.
        assert_eq!(h.rto_ns(RailId(0)), 240);
        for _ in 0..50 {
            h.on_rtt_sample(RailId(0), 80, 0);
        }
        // Stable samples shrink the variance towards the clamp floor.
        assert!(h.rto_ns(RailId(0)) < 240);
        assert!(h.rto_ns(RailId(0)) >= 80);
        // Other rail untouched.
        assert_eq!(h.rto_ns(RailId(1)), 100);
    }

    #[test]
    fn timeouts_walk_up_suspect_down() {
        let mut h = HealthTracker::new(cfg(), 1);
        let r = RailId(0);
        assert_eq!(
            h.on_timeout(r, 0),
            Some(Transition {
                rail: r,
                to: RailState::Suspect
            })
        );
        assert!(h.usable(r), "suspect rails stay schedulable");
        assert_eq!(h.on_timeout(r, 10), None, "still suspect");
        assert_eq!(
            h.on_timeout(r, 20),
            Some(Transition {
                rail: r,
                to: RailState::Down
            })
        );
        assert!(!h.usable(r));
        assert!(h.none_usable());
    }

    #[test]
    fn success_resets_and_recovers() {
        let mut h = HealthTracker::new(cfg(), 1);
        let r = RailId(0);
        h.on_timeout(r, 0);
        assert_eq!(h.rail(r).state(), RailState::Suspect);
        let t = h.on_success(r, 0).expect("recovery transition");
        assert_eq!(t.to, RailState::Up);
        // Counter reset: one timeout only re-suspects, doesn't go down.
        h.on_timeout(r, 0);
        assert_eq!(h.rail(r).state(), RailState::Suspect);
    }

    #[test]
    fn probe_cycle_reinstates_a_down_rail() {
        let mut h = HealthTracker::new(cfg(), 1);
        let r = RailId(0);
        for t in 0..3 {
            h.on_timeout(r, t);
        }
        assert_eq!(h.rail(r).state(), RailState::Down);
        assert!(!h.probe_due(r, 0), "probe timer not yet expired");
        // Rail went down at t=2 -> next probe due at 502.
        assert!(h.probe_due(r, 502));
        h.on_probe_sent(r, 502);
        assert_eq!(h.rail(r).state(), RailState::Probing);
        // Unanswered: back to Down, timer re-armed.
        assert!(h.probe_expired(r, 702));
        h.on_probe_timeout(r, 702);
        assert_eq!(h.rail(r).state(), RailState::Down);
        assert!(!h.probe_due(r, 900));
        assert!(h.probe_due(r, 1202));
        // Answered this time: Up again.
        h.on_probe_sent(r, 1200);
        h.on_probe_ok(r, 50, 1250);
        assert_eq!(h.rail(r).state(), RailState::Up);
        assert_eq!(
            h.rail(r).history(),
            &[
                RailState::Up,
                RailState::Suspect,
                RailState::Down,
                RailState::Probing,
                RailState::Down,
                RailState::Probing,
                RailState::Up,
            ]
        );
    }

    #[test]
    fn suspect_probe_timeout_counts_towards_down() {
        let mut h = HealthTracker::new(cfg(), 1);
        let r = RailId(0);
        h.on_timeout(r, 0); // 1: Suspect
        assert!(h.probe_due(r, 0), "suspect rails probe immediately");
        h.on_probe_sent(r, 0);
        assert_eq!(h.rail(r).state(), RailState::Suspect, "still schedulable");
        assert!(!h.probe_due(r, 10), "one probe at a time");
        h.on_probe_timeout(r, 200); // 2: still Suspect
        assert_eq!(h.rail(r).state(), RailState::Suspect);
        h.on_probe_sent(r, 200);
        h.on_probe_timeout(r, 400); // 3: Down
        assert_eq!(h.rail(r).state(), RailState::Down);
    }

    #[test]
    fn dwell_times_follow_the_timestamped_history() {
        let mut h = HealthTracker::new(cfg(), 1);
        let r = RailId(0);
        h.on_timeout(r, 100); // Up [0,100), Suspect from 100
        h.on_timeout(r, 150);
        h.on_timeout(r, 300); // Down from 300
        h.on_probe_sent(r, 800); // Probing from 800
        h.on_probe_ok(r, 50, 850); // Up again from 850
        let t = h.telemetry(r, 1000);
        assert_eq!(t.state, RailState::Up);
        assert_eq!(t.dwell_ns[RailState::Up.index()], 100 + (1000 - 850));
        assert_eq!(t.dwell_ns[RailState::Suspect.index()], 200);
        assert_eq!(t.dwell_ns[RailState::Down.index()], 500);
        assert_eq!(t.dwell_ns[RailState::Probing.index()], 50);
        assert_eq!(t.transitions, 4);
        assert_eq!(t.srtt_ns, Some(50));
        assert_eq!(t.rttvar_ns, 25);
        let stamped: Vec<(u64, RailState)> = h.rail(r).history_stamped().collect();
        assert_eq!(stamped[0], (0, RailState::Up));
        assert_eq!(stamped[4], (850, RailState::Up));
    }

    #[test]
    fn calibration_weight_tracks_state() {
        let mut h = HealthTracker::new(cfg(), 1);
        let r = RailId(0);
        assert_eq!(h.calibration_weight(r), 1.0);
        h.on_timeout(r, 100); // Suspect
        assert_eq!(h.calibration_weight(r), 0.25);
        h.on_timeout(r, 150);
        h.on_timeout(r, 300); // Down
        assert_eq!(h.calibration_weight(r), 0.0);
        h.on_probe_sent(r, 800); // Probing
        assert_eq!(h.calibration_weight(r), 0.25);
        h.on_probe_ok(r, 50, 850); // Up again
        assert_eq!(h.calibration_weight(r), 1.0);
    }

    #[test]
    #[should_panic(expected = "initial RTO")]
    fn config_validation_rejects_out_of_window_initial() {
        HealthConfig {
            initial_rto_ns: 5,
            ..cfg()
        }
        .validate();
    }
}
