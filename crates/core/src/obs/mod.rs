//! Observability: flight recorder, log2 histograms, trace exporters.
//!
//! The paper's argument is about *when* the scheduler acts — segments sit
//! in a backlog until a NIC goes idle, then get aggregated, reordered, or
//! split (§2–§3.4) — so aggregate counters alone cannot explain a
//! bandwidth number. This module adds a packet-lifecycle event stream
//! (submit → backlog → strategy decision → tx post → tx done → rx →
//! ack/retransmit/failover) with the same discipline as the datapath:
//! zero dependencies, zero hot-path allocations (preallocated ring,
//! fixed-size [`Event`] records, no `String` anywhere near `record`),
//! and a measured overhead budget (`ablate_obs` gates the recorder at
//! ≤ 5% throughput cost on the bandwidth ladder).
//!
//! Exporters live on the cold path only: JSONL for ad-hoc grepping,
//! Chrome `trace_event` JSON for `chrome://tracing`/Perfetto, and a
//! human summary. See DESIGN.md "Observability".
#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

mod export;
mod hist;
mod recorder;

pub use export::{merge_events, summary, to_chrome_trace, to_jsonl};
pub use hist::Log2Histogram;
pub use recorder::{Event, EventKind, FlightRecorder, NO_RAIL};
