//! Observability: flight recorder, log2 histograms, trace exporters.
//!
//! The paper's argument is about *when* the scheduler acts — segments sit
//! in a backlog until a NIC goes idle, then get aggregated, reordered, or
//! split (§2–§3.4) — so aggregate counters alone cannot explain a
//! bandwidth number. This module adds a packet-lifecycle event stream
//! (submit → backlog → strategy decision → tx post → tx done → rx →
//! ack/retransmit/failover) with the same discipline as the datapath:
//! zero dependencies, zero hot-path allocations (preallocated ring,
//! fixed-size [`Event`] records, no `String` anywhere near `record`),
//! and a measured overhead budget (`ablate_obs` gates the recorder at
//! ≤ 5% throughput cost on the bandwidth ladder).
//!
//! Exporters live on the cold path only: JSONL for ad-hoc grepping,
//! Chrome `trace_event` JSON for `chrome://tracing`/Perfetto, and a
//! human summary. See DESIGN.md "Observability".
//!
//! On top of the recorder sits the *continuous* telemetry layer (same
//! discipline, live output): [`TelemetryAggregator`] folds the ring into
//! fixed-interval windows, [`Watchdog`] runs EWMA-baseline SLO rules
//! over them, and [`spans`] decomposes per-request critical paths. See
//! DESIGN.md §8 "Observability: recorder + telemetry".
#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

mod export;
mod hist;
mod recorder;
pub mod spans;
mod telemetry;
mod watchdog;

pub use export::{
    merge_events, summary, summary_with_stats, to_chrome_trace, to_chrome_trace_with_overflow,
    to_jsonl, to_jsonl_with_overflow,
};
pub use hist::Log2Histogram;
pub use recorder::{Event, EventKind, FlightRecorder, NO_RAIL};
pub use spans::SpanBreakdown;
pub use telemetry::{
    to_prometheus, windows_jsonl, RailWindow, TelemetryAggregator, TelemetryConfig, Window,
};
pub use watchdog::{Alert, AlertKind, Watchdog, WatchdogConfig};
