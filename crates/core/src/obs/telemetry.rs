//! Continuous telemetry: fixed-interval windowed time series folded
//! from the flight recorder.
//!
//! The recorder (PR 3) is post-mortem: a ring you dump after the run.
//! This module makes the same event stream *live*: a
//! [`TelemetryAggregator`] tails the ring with a cursor
//! ([`super::FlightRecorder::events_since`]) and folds events into
//! fixed-interval [`Window`]s — per-rail throughput and utilization,
//! latency percentiles, retransmit/failover/probe rates, queue depths —
//! plus counter deltas sampled from [`EngineStats`] at each window close
//! (syscalls per packet, magazine hit rate, pool watermark).
//!
//! The discipline matches the recorder's: every window, rail slot and
//! histogram is preallocated at construction, window roll is a swap into
//! a ring of reused slots, and the fold runs only inside the scheduler's
//! amortized critical section (or `Engine::progress` on the serial
//! path) — never on a worker's wire path. `hot_path_allocs()` measures
//! the claim and the `ablate_obs` bench gates on it.

use crate::stats::{EngineStats, SyscallStats};

use super::hist::Log2Histogram;
use super::recorder::{Event, EventKind, FlightRecorder, NO_RAIL};

/// Telemetry knobs. Defaults are off: the aggregator costs nothing
/// unless a window interval is configured.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TelemetryConfig {
    /// Window interval in engine-clock nanoseconds. 0 disables the
    /// aggregator entirely.
    pub window_ns: u64,
    /// Closed windows retained in the ring (oldest overwritten first).
    pub windows: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            window_ns: 0,
            windows: 120,
        }
    }
}

impl TelemetryConfig {
    /// Whether the aggregator should be built at all.
    pub fn enabled(&self) -> bool {
        self.window_ns > 0
    }

    /// Sanity-check the knobs.
    pub fn validate(&self) {
        if self.enabled() {
            assert!(self.windows > 0, "telemetry needs at least one window");
        }
    }
}

/// Per-rail slice of one window.
#[derive(Clone, Debug, Default)]
pub struct RailWindow {
    /// Frames posted to the NIC (`TxPost`), control included.
    pub tx_frames: u64,
    /// Wire bytes posted.
    pub tx_bytes: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Wire bytes received.
    pub rx_bytes: u64,
    /// Messages re-queued blaming this rail.
    pub retransmits: u64,
    /// Failovers triggered by this rail going down.
    pub failovers: u64,
    /// Health probes issued.
    pub probes: u64,
    /// Nanoseconds this window during which the rail had at least one
    /// frame in flight (integrated from `TxPost`/`TxDone` pairs).
    pub busy_ns: u64,
    /// Per-rail RTT samples (`RttSample` events), nanoseconds.
    pub latency: Log2Histogram,
}

impl RailWindow {
    fn reset(&mut self) {
        *self = RailWindow {
            latency: Log2Histogram::new(),
            ..RailWindow::default()
        };
    }

    /// Fraction of the window the rail spent busy, in `[0, 1]`.
    pub fn utilization(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / window_ns as f64).min(1.0)
        }
    }

    /// Posted throughput over the window, bytes per second.
    pub fn throughput_bps(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            0.0
        } else {
            self.tx_bytes as f64 * 1e9 / window_ns as f64
        }
    }
}

/// One closed (or currently filling) telemetry window.
#[derive(Clone, Debug, Default)]
pub struct Window {
    /// Which window this is since the aggregator started (0-based).
    pub ordinal: u64,
    /// Window start, engine-clock nanoseconds (aligned to the interval).
    pub start_ns: u64,
    /// Window end (`start_ns + window_ns`).
    pub end_ns: u64,
    /// Per-rail slices.
    pub rails: Vec<RailWindow>,
    /// End-to-end ack round trips observed this window (`AckReceived`
    /// aux), nanoseconds.
    pub latency: Log2Histogram,
    /// Messages submitted.
    pub submits: u64,
    /// Acks received (sender side).
    pub acks: u64,
    /// Retransmissions across all rails.
    pub retransmits: u64,
    /// Submissions shed by overload protection.
    pub sheds: u64,
    /// Submissions refused with an explicit backpressure error.
    pub backpressure: u64,
    /// Watchdog alerts folded back out of the ring.
    pub alerts: u64,
    /// Recorder events folded into this window.
    pub events: u64,
    /// Events overwritten in the ring before the fold caught up —
    /// nonzero means the time series has a gap here.
    pub events_missed: u64,
    /// Per-rail outbox depth samples forwarded by the scheduler.
    pub outbox_depth: Log2Histogram,
    /// Completion-batch sizes per scheduler pass (submission-side queue
    /// pressure).
    pub sched_batch: Log2Histogram,
    /// Syscall counters accumulated during this window (delta of the
    /// transport workers' totals between the two window closes).
    pub syscalls: SyscallStats,
    /// Fraction of this window's buffer takes served lock-free from a
    /// magazine.
    pub magazine_hit_rate: f64,
    /// Pool buffers outstanding at window close (gauge — the watermark
    /// input).
    pub pool_outstanding: u64,
}

impl Window {
    fn new(n_rails: usize) -> Self {
        Window {
            rails: vec![RailWindow::default(); n_rails],
            ..Window::default()
        }
    }

    fn reset(&mut self, ordinal: u64, start_ns: u64) {
        let rails = std::mem::take(&mut self.rails);
        *self = Window {
            ordinal,
            start_ns,
            rails,
            ..Window::default()
        };
        for r in &mut self.rails {
            r.reset();
        }
    }

    /// Window length in nanoseconds (0 for a window not yet closed).
    pub fn span_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Folds recorder events into a ring of fixed-interval windows.
///
/// Owned by the engine (see `EngineConfig::telemetry`) and driven from
/// `Engine::fold_telemetry`; all methods are allocation-free after
/// construction.
#[derive(Clone, Debug)]
pub struct TelemetryAggregator {
    window_ns: u64,
    ring: Vec<Window>,
    /// Next ring slot a closing window swaps into.
    head: usize,
    /// Total windows closed since start.
    closed: u64,
    /// The window currently filling.
    current: Window,
    started: bool,
    /// Recorder-ordinal cursor: everything before it has been folded.
    cursor: u64,
    missed_total: u64,
    /// Frames in flight per rail (for busy-time integration).
    inflight: Vec<u32>,
    /// When each rail's current busy interval started (valid while
    /// `inflight > 0`; re-anchored to the window start at each roll).
    busy_since: Vec<u64>,
    prev_syscalls: SyscallStats,
    prev_magazine_hits: u64,
    prev_takes: u64,
    initial_ring_cap: usize,
    initial_rails_cap: usize,
}

impl TelemetryAggregator {
    /// Aggregator for `n_rails` rails. Allocates the whole window ring
    /// here, once.
    pub fn new(n_rails: usize, cfg: TelemetryConfig) -> Self {
        cfg.validate();
        assert!(
            cfg.enabled(),
            "telemetry aggregator needs a window interval"
        );
        let ring: Vec<Window> = (0..cfg.windows).map(|_| Window::new(n_rails)).collect();
        let current = Window::new(n_rails);
        let initial_ring_cap = ring.capacity();
        let initial_rails_cap = current.rails.capacity();
        TelemetryAggregator {
            window_ns: cfg.window_ns,
            ring,
            head: 0,
            closed: 0,
            current,
            started: false,
            cursor: 0,
            missed_total: 0,
            inflight: vec![0; n_rails],
            busy_since: vec![0; n_rails],
            prev_syscalls: SyscallStats::default(),
            prev_magazine_hits: 0,
            prev_takes: 0,
            initial_ring_cap,
            initial_rails_cap,
        }
    }

    /// The configured window interval, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Windows closed since start (the next window's ordinal).
    pub fn windows_closed(&self) -> u64 {
        self.closed
    }

    /// Recorder events lost to ring overwrite before the fold caught up.
    pub fn events_missed(&self) -> u64 {
        self.missed_total
    }

    /// Allocations attributable to the fold path since construction.
    /// Zero by design (swap-and-reset ring, fixed histograms); measured
    /// like the recorder's and gated by `ablate_obs`.
    pub fn hot_path_allocs(&self) -> u64 {
        u64::from(self.ring.capacity() != self.initial_ring_cap)
            + u64::from(self.current.rails.capacity() != self.initial_rails_cap)
    }

    /// The window currently filling.
    pub fn current(&self) -> &Window {
        &self.current
    }

    /// The most recently closed window, if any.
    pub fn latest(&self) -> Option<&Window> {
        if self.closed == 0 {
            return None;
        }
        let idx = (self.head + self.ring.len() - 1) % self.ring.len();
        Some(&self.ring[idx])
    }

    /// Closed windows oldest-first (at most the configured ring depth).
    pub fn windows(&self) -> impl Iterator<Item = &Window> + '_ {
        let kept = (self.closed as usize).min(self.ring.len());
        let len = self.ring.len();
        // Oldest surviving window: head - kept (mod len).
        let start = (self.head + len - kept) % len;
        (0..kept).map(move |i| &self.ring[(start + i) % len])
    }

    /// Record an outbox-depth sample into the current window.
    pub fn note_outbox_depth(&mut self, depth: u64) {
        self.current.outbox_depth.record(depth);
    }

    /// Record a scheduler completion-batch sample into the current window.
    pub fn note_sched_batch(&mut self, completions: u64) {
        self.current.sched_batch.record(completions);
    }

    /// Tail the recorder from the fold cursor, fold every new event into
    /// the window grid, and close any windows `now_ns` has moved past
    /// (sampling stats deltas at each close). Returns how many windows
    /// closed during this fold, so the caller can run watchdog rules on
    /// exactly the newly closed windows.
    pub fn fold(&mut self, rec: &FlightRecorder, now_ns: u64, stats: &EngineStats) -> u64 {
        let before = self.closed;
        let (missed, it) = rec.events_since(self.cursor);
        self.current.events_missed += missed;
        self.missed_total += missed;
        for ev in it {
            self.roll_to(ev.ts_ns, stats);
            self.ingest(ev);
        }
        self.cursor = rec.total_recorded();
        self.roll_to(now_ns, stats);
        self.closed - before
    }

    /// Advance the window grid so `ts_ns` falls inside the current
    /// window, closing windows along the way.
    fn roll_to(&mut self, ts_ns: u64, stats: &EngineStats) {
        if !self.started {
            self.started = true;
            self.current.start_ns = ts_ns - ts_ns % self.window_ns;
        }
        while ts_ns >= self.current.start_ns + self.window_ns {
            self.close_current(stats);
        }
    }

    fn close_current(&mut self, stats: &EngineStats) {
        let end_ns = self.current.start_ns + self.window_ns;
        // Bank open busy intervals up to the boundary and re-anchor.
        for r in 0..self.inflight.len() {
            if self.inflight[r] > 0 {
                let since = self.busy_since[r].max(self.current.start_ns);
                self.current.rails[r].busy_ns += end_ns.saturating_sub(since);
                self.busy_since[r] = end_ns;
            }
        }
        self.current.ordinal = self.closed;
        self.current.end_ns = end_ns;
        self.sample_stats(stats);
        std::mem::swap(&mut self.ring[self.head], &mut self.current);
        self.head = (self.head + 1) % self.ring.len();
        self.closed += 1;
        self.current.reset(self.closed, end_ns);
    }

    /// Sample cumulative-stat deltas and gauges into the closing window.
    fn sample_stats(&mut self, stats: &EngineStats) {
        let sc = stats.syscalls;
        self.current.syscalls = sc.delta_since(&self.prev_syscalls);
        self.prev_syscalls = sc;
        let takes = stats.datapath.pool_hits + stats.datapath.hot_path_allocs;
        let mhits = stats.datapath.pool_magazine_hits;
        let dt = takes.saturating_sub(self.prev_takes);
        let dm = mhits.saturating_sub(self.prev_magazine_hits);
        self.current.magazine_hit_rate = if dt == 0 { 0.0 } else { dm as f64 / dt as f64 };
        self.prev_takes = takes;
        self.prev_magazine_hits = mhits;
        self.current.pool_outstanding = stats.datapath.pool_outstanding;
    }

    /// Fold one event into the current window. Unknown rails (worker
    /// shards never reach this path, but be defensive) count only into
    /// window-level totals.
    fn ingest(&mut self, ev: &Event) {
        self.current.events += 1;
        let rail = (ev.rail != NO_RAIL && (ev.rail as usize) < self.inflight.len())
            .then_some(ev.rail as usize);
        match ev.kind {
            EventKind::TxPost => {
                if let Some(r) = rail {
                    if self.inflight[r] == 0 {
                        self.busy_since[r] = ev.ts_ns;
                    }
                    self.inflight[r] += 1;
                    self.current.rails[r].tx_frames += 1;
                    self.current.rails[r].tx_bytes += ev.size;
                }
            }
            EventKind::TxDone => {
                if let Some(r) = rail {
                    if self.inflight[r] > 0 {
                        self.inflight[r] -= 1;
                        if self.inflight[r] == 0 {
                            let since = self.busy_since[r].max(self.current.start_ns);
                            self.current.rails[r].busy_ns += ev.ts_ns.saturating_sub(since);
                        }
                    }
                }
            }
            EventKind::Rx => {
                if let Some(r) = rail {
                    self.current.rails[r].rx_frames += 1;
                    self.current.rails[r].rx_bytes += ev.size;
                }
            }
            EventKind::RttSample => {
                if let Some(r) = rail {
                    self.current.rails[r].latency.record(ev.aux);
                }
            }
            EventKind::AckReceived => {
                self.current.acks += 1;
                self.current.latency.record(ev.aux);
            }
            EventKind::Retransmit => {
                self.current.retransmits += 1;
                // `size` carries the blamed-rails bitmask (a split attempt
                // can blame several rails); credit each blamed rail's
                // window. Events without a mask (hand-built, or no rail
                // was used yet) fall back to the single `rail` field.
                if ev.size != 0 {
                    for r in 0..self.current.rails.len().min(64) {
                        if ev.size & (1 << r) != 0 {
                            self.current.rails[r].retransmits += 1;
                        }
                    }
                } else if let Some(r) = rail {
                    self.current.rails[r].retransmits += 1;
                }
            }
            EventKind::Failover => {
                if let Some(r) = rail {
                    self.current.rails[r].failovers += 1;
                }
            }
            EventKind::ProbeSent => {
                if let Some(r) = rail {
                    self.current.rails[r].probes += 1;
                }
            }
            EventKind::Submit => self.current.submits += 1,
            EventKind::Shed => self.current.sheds += ev.size,
            EventKind::Backpressure => self.current.backpressure += ev.size,
            EventKind::Alert => self.current.alerts += 1,
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Streaming exporters (cold path: allocate freely)
// ---------------------------------------------------------------------

/// Prometheus text exposition: cumulative counters from [`EngineStats`]
/// plus gauges from the latest closed window. Hand-written like the
/// other exporters — every label is static, so the obs subsystem stays
/// dependency-free.
pub fn to_prometheus(agg: &TelemetryAggregator, stats: &EngineStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let w_s = agg.window_ns() as f64 / 1e9;
    let _ = writeln!(out, "# TYPE nmad_window_seconds gauge");
    let _ = writeln!(out, "nmad_window_seconds {w_s}");
    let _ = writeln!(out, "# TYPE nmad_windows_closed_total counter");
    let _ = writeln!(out, "nmad_windows_closed_total {}", agg.windows_closed());
    let _ = writeln!(out, "# TYPE nmad_telemetry_events_missed_total counter");
    let _ = writeln!(
        out,
        "nmad_telemetry_events_missed_total {}",
        agg.events_missed()
    );

    let _ = writeln!(out, "# TYPE nmad_rail_tx_packets_total counter");
    for (r, rs) in stats.rails.iter().enumerate() {
        let _ = writeln!(
            out,
            "nmad_rail_tx_packets_total{{rail=\"{r}\"}} {}",
            rs.packets
        );
    }
    let _ = writeln!(out, "# TYPE nmad_rail_wire_bytes_total counter");
    for (r, rs) in stats.rails.iter().enumerate() {
        let _ = writeln!(
            out,
            "nmad_rail_wire_bytes_total{{rail=\"{r}\"}} {}",
            rs.wire_bytes
        );
    }
    let _ = writeln!(out, "# TYPE nmad_rail_retransmits_total counter");
    for (r, rs) in stats.rails.iter().enumerate() {
        let _ = writeln!(
            out,
            "nmad_rail_retransmits_total{{rail=\"{r}\"}} {}",
            rs.retransmit_packets
        );
    }
    let _ = writeln!(out, "# TYPE nmad_shed_total counter");
    let _ = writeln!(out, "nmad_shed_total {}", stats.overload.total_shed());

    if let Some(w) = agg.latest() {
        let span = w.span_ns().max(1);
        let _ = writeln!(out, "# TYPE nmad_rail_throughput_bytes_per_second gauge");
        for (r, rw) in w.rails.iter().enumerate() {
            let _ = writeln!(
                out,
                "nmad_rail_throughput_bytes_per_second{{rail=\"{r}\"}} {:.1}",
                rw.throughput_bps(span)
            );
        }
        let _ = writeln!(out, "# TYPE nmad_rail_utilization gauge");
        for (r, rw) in w.rails.iter().enumerate() {
            let _ = writeln!(
                out,
                "nmad_rail_utilization{{rail=\"{r}\"}} {:.4}",
                rw.utilization(span)
            );
        }
        let _ = writeln!(out, "# TYPE nmad_latency_ns gauge");
        for (q, label) in [(0.50, "0.5"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "nmad_latency_ns{{quantile=\"{label}\"}} {}",
                w.latency.approx_quantile(q).unwrap_or(0)
            );
        }
        let _ = writeln!(out, "# TYPE nmad_window_retransmits gauge");
        let _ = writeln!(out, "nmad_window_retransmits {}", w.retransmits);
        let _ = writeln!(out, "# TYPE nmad_window_sheds gauge");
        let _ = writeln!(out, "nmad_window_sheds {}", w.sheds);
        let _ = writeln!(out, "# TYPE nmad_syscalls_per_packet gauge");
        let _ = writeln!(
            out,
            "nmad_syscalls_per_packet {:.4}",
            w.syscalls.per_packet()
        );
        let _ = writeln!(out, "# TYPE nmad_magazine_hit_rate gauge");
        let _ = writeln!(out, "nmad_magazine_hit_rate {:.4}", w.magazine_hit_rate);
        let _ = writeln!(out, "# TYPE nmad_pool_outstanding gauge");
        let _ = writeln!(out, "nmad_pool_outstanding {}", w.pool_outstanding);
        let _ = writeln!(out, "# TYPE nmad_outbox_depth_p99 gauge");
        let _ = writeln!(
            out,
            "nmad_outbox_depth_p99 {}",
            w.outbox_depth.approx_quantile(0.99).unwrap_or(0)
        );
    }
    out
}

/// JSONL time series: one object per closed window, oldest-first. The
/// interchange format for `nmad top --jsonl`, the soak artifact and CI.
pub fn windows_jsonl(agg: &TelemetryAggregator) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for w in agg.windows() {
        let span = w.span_ns().max(1);
        let _ = write!(
            out,
            "{{\"ordinal\":{},\"start_ns\":{},\"end_ns\":{},\"submits\":{},\"acks\":{},\
             \"retransmits\":{},\"sheds\":{},\"backpressure\":{},\"alerts\":{},\
             \"events\":{},\"events_missed\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"syscalls_per_packet\":{:.4},\"magazine_hit_rate\":{:.4},\
             \"pool_outstanding\":{},\"outbox_p99\":{},\"rails\":[",
            w.ordinal,
            w.start_ns,
            w.end_ns,
            w.submits,
            w.acks,
            w.retransmits,
            w.sheds,
            w.backpressure,
            w.alerts,
            w.events,
            w.events_missed,
            w.latency.approx_quantile(0.50).unwrap_or(0),
            w.latency.approx_quantile(0.99).unwrap_or(0),
            w.syscalls.per_packet(),
            w.magazine_hit_rate,
            w.pool_outstanding,
            w.outbox_depth.approx_quantile(0.99).unwrap_or(0),
        );
        for (i, rw) in w.rails.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tx_frames\":{},\"tx_bytes\":{},\"rx_frames\":{},\"rx_bytes\":{},\
                 \"retransmits\":{},\"failovers\":{},\"probes\":{},\"utilization\":{:.4},\
                 \"p99_ns\":{}}}",
                rw.tx_frames,
                rw.tx_bytes,
                rw.rx_frames,
                rw.rx_bytes,
                rw.retransmits,
                rw.failovers,
                rw.probes,
                rw.utilization(span),
                rw.latency.approx_quantile(0.99).unwrap_or(0),
            );
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000; // 1 µs windows keep the numbers readable

    fn agg(n_rails: usize) -> TelemetryAggregator {
        TelemetryAggregator::new(
            n_rails,
            TelemetryConfig {
                window_ns: W,
                windows: 8,
            },
        )
    }

    fn stats() -> EngineStats {
        EngineStats::new(2)
    }

    #[test]
    fn windows_roll_on_the_grid() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(64);
        rec.record(Event::new(150, EventKind::Submit).seq(1));
        rec.record(Event::new(2_600, EventKind::Submit).seq(2));
        let closed = a.fold(&rec, 3_100, &stats());
        // Grid starts at 0 (150 aligned down); 3.1 µs closes 3 windows.
        assert_eq!(closed, 3);
        let ws: Vec<&Window> = a.windows().collect();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].start_ns, 0);
        assert_eq!(ws[0].submits, 1);
        assert_eq!(ws[1].submits, 0, "empty windows still close");
        assert_eq!(ws[2].submits, 1);
        assert_eq!(a.current().start_ns, 3_000);
    }

    #[test]
    fn busy_time_integrates_across_window_boundaries() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(64);
        // One frame in flight on rail 0 from 500 to 2 500: busy 500 ns in
        // window 0, the full 1 000 ns in window 1, 500 ns in window 2.
        rec.record(Event::new(500, EventKind::TxPost).rail(0).seq(1).size(100));
        rec.record(
            Event::new(2_500, EventKind::TxDone)
                .rail(0)
                .seq(1)
                .size(100),
        );
        a.fold(&rec, 3_000, &stats());
        let ws: Vec<&Window> = a.windows().collect();
        assert_eq!(ws[0].rails[0].busy_ns, 500);
        assert_eq!(ws[1].rails[0].busy_ns, 1_000);
        assert_eq!(ws[2].rails[0].busy_ns, 500);
        assert_eq!(ws[0].rails[0].tx_bytes, 100);
        assert!(ws[1].rails[0].utilization(W) > 0.99);
        assert_eq!(ws[0].rails[1].busy_ns, 0);
    }

    #[test]
    fn stats_deltas_sampled_per_window() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(64);
        let mut st = stats();
        st.syscalls = SyscallStats {
            tx_calls: 10,
            tx_frames: 40,
            rx_calls: 0,
            rx_frames: 0,
        };
        st.datapath.pool_hits = 100;
        st.datapath.pool_magazine_hits = 90;
        st.datapath.pool_outstanding = 7;
        rec.record(Event::new(100, EventKind::Submit));
        a.fold(&rec, 1_500, &st);
        let w0 = a.latest().unwrap().clone();
        assert_eq!(w0.syscalls.tx_calls, 10);
        assert!((w0.magazine_hit_rate - 0.9).abs() < 1e-9);
        assert_eq!(w0.pool_outstanding, 7);
        // Second window sees only the delta.
        st.syscalls.tx_calls = 15;
        st.syscalls.tx_frames = 50;
        st.datapath.pool_hits = 120;
        st.datapath.pool_magazine_hits = 92;
        a.fold(&rec, 2_500, &st);
        let w1 = a.latest().unwrap();
        assert_eq!(w1.syscalls.tx_calls, 5);
        assert_eq!(w1.syscalls.tx_frames, 10);
        assert!(
            (w1.magazine_hit_rate - 0.1).abs() < 1e-9,
            "{}",
            w1.magazine_hit_rate
        );
    }

    #[test]
    fn ring_overwrite_reports_missed_events() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(4);
        for i in 0..12u64 {
            rec.record(Event::new(100 + i, EventKind::Submit).seq(i));
        }
        a.fold(&rec, 900, &stats());
        assert_eq!(a.events_missed(), 8);
        assert_eq!(a.current().events, 4);
        assert_eq!(a.current().events_missed, 8);
    }

    #[test]
    fn window_ring_keeps_newest_and_never_allocates() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(256);
        for i in 0..20u64 {
            rec.record(Event::new(i * W + 10, EventKind::Submit).seq(i));
        }
        a.fold(&rec, 21 * W, &stats());
        assert_eq!(a.windows_closed(), 21);
        let ws: Vec<u64> = a.windows().map(|w| w.ordinal).collect();
        assert_eq!(
            ws,
            (13..21).collect::<Vec<u64>>(),
            "ring keeps the newest 8"
        );
        assert_eq!(a.hot_path_allocs(), 0);
        assert_eq!(a.latest().unwrap().ordinal, 20);
    }

    #[test]
    fn per_rail_counters_fold() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(64);
        rec.record(Event::new(10, EventKind::Rx).rail(1).size(64));
        rec.record(Event::new(20, EventKind::RttSample).rail(1).aux(5_000));
        rec.record(Event::new(30, EventKind::AckReceived).seq(1).aux(9_000));
        rec.record(
            Event::new(40, EventKind::Retransmit)
                .rail(0)
                .seq(2)
                .aux(1_000),
        );
        rec.record(Event::new(50, EventKind::Failover).rail(0).aux(1));
        rec.record(Event::new(60, EventKind::ProbeSent).rail(0).seq(3));
        rec.record(Event::new(70, EventKind::Shed).size(3).aux(0));
        a.fold(&rec, 1_100, &stats());
        let w = a.latest().unwrap();
        assert_eq!(w.rails[1].rx_frames, 1);
        assert_eq!(w.rails[1].rx_bytes, 64);
        assert_eq!(w.rails[1].latency.count(), 1);
        assert_eq!(w.acks, 1);
        assert_eq!(w.latency.max(), Some(9_000));
        assert_eq!(w.retransmits, 1);
        assert_eq!(w.rails[0].retransmits, 1);
        assert_eq!(w.rails[0].failovers, 1);
        assert_eq!(w.rails[0].probes, 1);
        assert_eq!(w.sheds, 3);
    }

    #[test]
    fn retransmit_blame_mask_credits_every_rail() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(64);
        // A split attempt expired: both rails are blamed. The engine
        // emits ONE Retransmit event whose `size` is the blame bitmask
        // and whose `rail` is the first blamed rail; each blamed rail's
        // window must be credited, but the fabric total counts messages,
        // not blames.
        rec.record(
            Event::new(40, EventKind::Retransmit)
                .rail(0)
                .seq(2)
                .size(0b11)
                .aux(1_000),
        );
        // And a single-rail attempt blaming only rail 1: the mask and the
        // `rail` field agree, counted once.
        rec.record(
            Event::new(50, EventKind::Retransmit)
                .rail(1)
                .seq(3)
                .size(0b10)
                .aux(1_000),
        );
        a.fold(&rec, 1_100, &stats());
        let w = a.latest().unwrap();
        assert_eq!(w.retransmits, 2, "two retransmitted messages");
        assert_eq!(w.rails[0].retransmits, 1);
        assert_eq!(w.rails[1].retransmits, 2, "rail 1 blamed by both");
    }

    #[test]
    fn exporters_render_the_series() {
        let mut a = agg(2);
        let mut rec = FlightRecorder::with_capacity(64);
        rec.record(Event::new(100, EventKind::TxPost).rail(0).seq(1).size(4096));
        rec.record(Event::new(600, EventKind::TxDone).rail(0).seq(1).size(4096));
        rec.record(Event::new(700, EventKind::AckReceived).seq(1).aux(600));
        a.note_outbox_depth(3);
        a.fold(&rec, 2_100, &stats());
        let prom = to_prometheus(&a, &stats());
        assert!(prom.contains("nmad_rail_utilization{rail=\"0\"}"), "{prom}");
        assert!(prom.contains("nmad_windows_closed_total 2"), "{prom}");
        assert!(prom.contains("nmad_magazine_hit_rate"), "{prom}");
        let jsonl = windows_jsonl(&a);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(
            jsonl.lines().next().unwrap().contains("\"tx_bytes\":4096"),
            "{jsonl}"
        );
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
