//! The flight recorder: a bounded, single-writer ring of fixed-size
//! packet-lifecycle events.
//!
//! Lock-freedom here is by construction, not by atomics: the recorder is
//! owned by exactly one engine (itself single-threaded behind the
//! runtime's progression lock), so `record` is a plain indexed store
//! into a buffer preallocated at enable time. Overflow overwrites the
//! oldest record; `dropped()` says how many were lost.

/// Rail field value for events that are not tied to a rail.
pub const NO_RAIL: u16 = u16::MAX;

/// What happened. Variants follow a packet through its whole life plus
/// the reliability/health machinery and the simulator's hardware model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Application submitted a message (`seq` = send id, `size` = total
    /// bytes, `aux` = segment count).
    Submit,
    /// A segment entered the backlog (`seq` = send id, `size` = segment
    /// bytes, `aux` = 1 for rendezvous, 0 for eager).
    BacklogPush,
    /// Strategy sent a whole segment eagerly (`seq` = send id).
    DecideEager,
    /// Strategy aggregated small segments into one container
    /// (`size` = container payload bytes, `aux` = segments packed).
    DecideAggregate,
    /// Strategy split a segment across rails; one event per planned
    /// chunk (`seq` = send id, `size` = chunk bytes, `aux` = chunk share
    /// of the split in permille).
    DecideSplit,
    /// Strategy emitted a bounded chunk outside a full split plan
    /// (`seq` = send id, `size` = chunk bytes).
    DecideChunk,
    /// Strategy re-striped a straggling/unhealthy rail's remaining
    /// planned chunks onto the surviving rails (`rail` = the rail that
    /// lost its plan, `aux` = chunks moved).
    Restripe,
    /// A frame was handed to the NIC (`seq` = tx token, `size` = wire
    /// bytes, `aux` = 1 for control traffic).
    TxPost,
    /// The NIC finished sending a frame (`seq` = tx token, `size` = wire
    /// bytes).
    TxDone,
    /// A frame arrived (`size` = wire bytes).
    Rx,
    /// Receiver acknowledged a message (`seq` = send id).
    AckSent,
    /// Sender saw the ack (`seq` = send id, `aux` = measured RTT in ns).
    AckReceived,
    /// A per-rail RTT sample was fed to the health tracker
    /// (`aux` = RTT in ns).
    RttSample,
    /// A message was re-queued for retransmission (`seq` = send id,
    /// `aux` = the RTO that fired in ns, `rail` = first blamed rail,
    /// `size` = bitmask of every blamed rail — a split attempt can
    /// blame several).
    Retransmit,
    /// A retransmission timer blamed this rail (`seq` = send id).
    TimeoutBlame,
    /// A health probe went out (`seq` = probe id).
    ProbeSent,
    /// A probe pong came back (`seq` = probe id, `aux` = RTT ns).
    ProbeOk,
    /// A probe expired unanswered (`seq` = probe id).
    ProbeTimeout,
    /// Rail health state changed (`aux` = new state code: 0 Up,
    /// 1 Suspect, 2 Down, 3 Probing).
    HealthTransition,
    /// A Down transition reassigned this rail's planned chunks
    /// (`aux` = surviving rail count).
    Failover,
    /// The online calibrator rebuilt the split tables; one event per rail
    /// (`seq` = rebuild ordinal, `size` = this rail's reference-size split
    /// share *before* the rebuild in permille, `aux` = the share after).
    Calibrate,
    /// Simulator: CPU busy injecting or receiving (`size` = wire bytes,
    /// `aux` = bytes copied at injection).
    SimCpu,
    /// Simulator: NIC event (`aux` = 0 PIO done, 1 packet lost).
    SimNic,
    /// Simulator: I/O bus DMA activity (`size` = transfer bytes,
    /// `aux` = 0 start, 1 done).
    SimBus,
    /// Simulator: application-level completion (`aux` = 0 send done,
    /// 1 recv done).
    SimApp,
    /// Parallel transport: a TX worker finished its transport write
    /// outside the engine lock (`seq` = tx token, `size` = wire bytes,
    /// `aux` = write duration ns). Recorded into the worker's own ring
    /// shard, merged with the engine ring at export.
    WorkerWrite,
    /// Parallel transport: an RX worker pulled a frame off the wire
    /// before handing it to the scheduler (`size` = wire bytes).
    WorkerRx,
    /// Overload protection shed a submission (`aux` = reason code:
    /// 0 queue depth, 1 tenant admission, 2 pool watermark).
    Shed,
    /// Overload protection refused a submission with an explicit
    /// backpressure/lifecycle error the caller must handle (`aux` =
    /// reason code: 0 would-block, 1 shutdown).
    Backpressure,
    /// The SLO watchdog fired a rule over a closed telemetry window
    /// (`seq` = window ordinal, `aux` = alert code: 0 latency
    /// regression, 1 rail share imbalance, 2 retransmit storm, 3 shed
    /// onset; `size` = the measured value that tripped the rule,
    /// `rail` = the offending rail or [`NO_RAIL`]).
    Alert,
}

impl EventKind {
    /// Short stable name, used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Submit => "submit",
            EventKind::BacklogPush => "backlog_push",
            EventKind::DecideEager => "decide_eager",
            EventKind::DecideAggregate => "decide_aggregate",
            EventKind::DecideSplit => "decide_split",
            EventKind::DecideChunk => "decide_chunk",
            EventKind::Restripe => "restripe",
            EventKind::TxPost => "tx_post",
            EventKind::TxDone => "tx_done",
            EventKind::Rx => "rx",
            EventKind::AckSent => "ack_sent",
            EventKind::AckReceived => "ack_received",
            EventKind::RttSample => "rtt_sample",
            EventKind::Retransmit => "retransmit",
            EventKind::TimeoutBlame => "timeout_blame",
            EventKind::ProbeSent => "probe_sent",
            EventKind::ProbeOk => "probe_ok",
            EventKind::ProbeTimeout => "probe_timeout",
            EventKind::HealthTransition => "health_transition",
            EventKind::Failover => "failover",
            EventKind::Calibrate => "calibrate",
            EventKind::SimCpu => "sim_cpu",
            EventKind::SimNic => "sim_nic",
            EventKind::SimBus => "sim_bus",
            EventKind::SimApp => "sim_app",
            EventKind::WorkerWrite => "worker_write",
            EventKind::WorkerRx => "worker_rx",
            EventKind::Shed => "shed",
            EventKind::Backpressure => "backpressure",
            EventKind::Alert => "alert",
        }
    }

    /// Coarse grouping, used as the Chrome-trace category.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Submit | EventKind::BacklogPush => "lifecycle",
            EventKind::DecideEager
            | EventKind::DecideAggregate
            | EventKind::DecideSplit
            | EventKind::DecideChunk
            | EventKind::Restripe
            | EventKind::Calibrate => "decision",
            EventKind::TxPost | EventKind::TxDone => "tx",
            EventKind::Rx => "rx",
            EventKind::AckSent
            | EventKind::AckReceived
            | EventKind::RttSample
            | EventKind::Retransmit
            | EventKind::TimeoutBlame => "reliability",
            EventKind::ProbeSent
            | EventKind::ProbeOk
            | EventKind::ProbeTimeout
            | EventKind::HealthTransition
            | EventKind::Failover => "health",
            EventKind::SimCpu | EventKind::SimNic | EventKind::SimBus | EventKind::SimApp => "sim",
            EventKind::WorkerWrite | EventKind::WorkerRx => "worker",
            EventKind::Shed | EventKind::Backpressure => "overload",
            EventKind::Alert => "watchdog",
        }
    }
}

/// One fixed-size record. Field meaning per variant is documented on
/// [`EventKind`]; unused fields are zero. `Copy` and `String`-free so
/// recording is a plain store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic timestamp (engine clock), nanoseconds.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Who observed it (node index in multi-node runtimes; 0 otherwise).
    pub actor: u16,
    /// Rail involved, or [`NO_RAIL`].
    pub rail: u16,
    /// Sequence-like identity (send id, tx token, probe id — per kind).
    pub seq: u64,
    /// Byte count (per kind).
    pub size: u64,
    /// Extra detail (per kind).
    pub aux: u64,
}

impl Event {
    /// A bare event; fill the rest with the builder-style setters.
    pub fn new(ts_ns: u64, kind: EventKind) -> Self {
        Event {
            ts_ns,
            kind,
            actor: 0,
            rail: NO_RAIL,
            seq: 0,
            size: 0,
            aux: 0,
        }
    }

    /// Set the rail.
    pub fn rail(mut self, rail: usize) -> Self {
        self.rail = rail as u16;
        self
    }

    /// Set the sequence identity.
    pub fn seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Set the byte count.
    pub fn size(mut self, size: u64) -> Self {
        self.size = size;
        self
    }

    /// Set the extra-detail word.
    pub fn aux(mut self, aux: u64) -> Self {
        self.aux = aux;
        self
    }

    /// Set the observing actor.
    pub fn actor(mut self, actor: u16) -> Self {
        self.actor = actor;
        self
    }
}

/// Bounded ring of [`Event`]s. Disabled (capacity 0) it is a no-op with
/// a single branch on the record path.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    capacity: usize,
    /// Backing-store capacity right after construction; any later growth
    /// would mean the record path allocated.
    initial_buf_capacity: usize,
    /// Total events ever recorded (including overwritten ones).
    total: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::disabled()
    }
}

impl FlightRecorder {
    /// A recorder that drops everything (the production default).
    pub fn disabled() -> Self {
        FlightRecorder {
            buf: Vec::new(),
            capacity: 0,
            initial_buf_capacity: 0,
            total: 0,
        }
    }

    /// A recorder keeping the newest `capacity` events. The ring is
    /// allocated here, once; `record` never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let buf = Vec::with_capacity(capacity);
        let initial_buf_capacity = buf.capacity();
        FlightRecorder {
            buf,
            capacity,
            initial_buf_capacity,
            total: 0,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event. On overflow the oldest event is overwritten.
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.capacity == 0 {
            return;
        }
        let idx = (self.total % self.capacity as u64) as usize;
        if idx < self.buf.len() {
            self.buf[idx] = ev;
        } else {
            self.buf.push(ev);
        }
        self.total += 1;
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or kept).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Allocations attributable to the record path since construction
    /// (ring growth). Zero by design; measured, not assumed — the
    /// `ablate_obs` bench gates on it.
    pub fn hot_path_allocs(&self) -> u64 {
        u64::from(self.buf.capacity() != self.initial_buf_capacity)
    }

    /// Iterate oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        let split = if self.total > self.capacity as u64 {
            (self.total % self.capacity as u64) as usize
        } else {
            0
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Snapshot oldest-first.
    pub fn events(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }

    /// Events recorded at or after ordinal `cursor` (ordinals count every
    /// `record` call since construction, so `total_recorded()` is the
    /// next cursor after a full read). Returns the number of events that
    /// were already overwritten past the cursor plus an iterator over the
    /// survivors, oldest-first. Allocation-free: this is how the
    /// telemetry aggregator tails the ring incrementally from the
    /// scheduler's amortized section.
    pub fn events_since(&self, cursor: u64) -> (u64, impl Iterator<Item = &Event> + '_) {
        let oldest = self.total - self.buf.len() as u64;
        let start = cursor.clamp(oldest, self.total);
        let missed = start - cursor.min(start);
        let cap = self.capacity.max(1) as u64;
        let iter = (start..self.total).map(move |ord| &self.buf[(ord % cap) as usize]);
        (missed, iter)
    }

    /// Forget everything recorded so far (the ring stays allocated).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(i: u64) -> Event {
        Event::new(i, EventKind::TxPost).seq(i)
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut r = FlightRecorder::disabled();
        r.record(ev(1));
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
        assert_eq!(r.hot_path_allocs(), 0);
    }

    #[test]
    fn fills_then_wraps() {
        let mut r = FlightRecorder::with_capacity(4);
        for i in 0..6 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 6);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        assert_eq!(r.hot_path_allocs(), 0);
    }

    #[test]
    fn events_since_tails_the_ring() {
        let mut r = FlightRecorder::with_capacity(4);
        for i in 0..3 {
            r.record(ev(i));
        }
        let (missed, it) = r.events_since(0);
        assert_eq!(missed, 0);
        assert_eq!(it.map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        // Tail from a cursor mid-stream.
        let (missed, it) = r.events_since(2);
        assert_eq!(missed, 0);
        assert_eq!(it.map(|e| e.seq).collect::<Vec<_>>(), vec![2]);
        // Overflow past the cursor reports the gap.
        for i in 3..9 {
            r.record(ev(i));
        }
        let (missed, it) = r.events_since(3);
        assert_eq!(missed, 2, "ordinals 3 and 4 were overwritten");
        assert_eq!(it.map(|e| e.seq).collect::<Vec<_>>(), vec![5, 6, 7, 8]);
        // A fully caught-up cursor sees nothing.
        let (missed, it) = r.events_since(r.total_recorded());
        assert_eq!(missed, 0);
        assert_eq!(it.count(), 0);
    }

    #[test]
    fn events_since_on_disabled_recorder_is_empty() {
        let mut r = FlightRecorder::disabled();
        r.record(ev(1));
        let (missed, it) = r.events_since(0);
        assert_eq!(missed, 0);
        assert_eq!(it.count(), 0);
    }

    proptest! {
        /// Under any overflow the ring keeps exactly the newest
        /// min(n, capacity) events, oldest-first, without allocating.
        #[test]
        fn overflow_keeps_newest_in_order(cap in 1usize..64, n in 0u64..512) {
            let mut r = FlightRecorder::with_capacity(cap);
            for i in 0..n {
                r.record(ev(i));
            }
            let kept = (cap as u64).min(n);
            let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
            let want: Vec<u64> = (n - kept..n).collect();
            prop_assert_eq!(seqs, want);
            prop_assert_eq!(r.dropped(), n - kept);
            prop_assert_eq!(r.hot_path_allocs(), 0);
        }
    }
}
