//! Cold-path exporters for recorded events: JSONL, Chrome `trace_event`
//! JSON (opens in `chrome://tracing` / Perfetto), and a human summary.
//!
//! Everything here allocates freely — exporters run after the workload,
//! never on the record path. JSON is emitted by hand: every string is a
//! static label from [`EventKind`], so no escaping machinery is needed
//! and the obs subsystem stays dependency-free.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::stats::EngineStats;

use super::recorder::{Event, EventKind, NO_RAIL};

/// Merge per-worker ring shards with the engine's ring into one
/// timestamp-ordered stream. The parallel transports record wire-level
/// worker events (`WorkerWrite`/`WorkerRx`) into per-thread shards — no
/// cross-thread synchronization on the record path — and only here, at
/// export time, do the shards meet. The sort is stable so events with
/// equal timestamps keep their shard order.
pub fn merge_events(shards: &[&[Event]]) -> Vec<Event> {
    let mut all: Vec<Event> = shards.iter().flat_map(|s| s.iter().copied()).collect();
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// One JSON object per event, one per line — easy to grep and stream.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"ts_ns\":{},\"kind\":\"{}\",\"cat\":\"{}\",\"actor\":{},\"rail\":",
            e.ts_ns,
            e.kind.label(),
            e.kind.category(),
            e.actor
        );
        if e.rail == NO_RAIL {
            out.push_str("null");
        } else {
            let _ = write!(out, "{}", e.rail);
        }
        let _ = writeln!(
            out,
            ",\"seq\":{},\"size\":{},\"aux\":{}}}",
            e.seq, e.size, e.aux
        );
    }
    out
}

/// [`to_jsonl`] with an explicit overflow marker: when the ring
/// overwrote events before the snapshot was taken (`dropped` from
/// [`super::FlightRecorder::dropped`]), the first line is a marker
/// object naming the gap, so a consumer replaying the stream knows the
/// series is truncated rather than silently starting late. With
/// `dropped == 0` the output is byte-identical to [`to_jsonl`].
pub fn to_jsonl_with_overflow(events: &[Event], dropped: u64) -> String {
    let mut out = String::new();
    if dropped > 0 {
        let resume = events.first().map(|e| e.ts_ns).unwrap_or(0);
        let _ = writeln!(
            out,
            "{{\"overflow\":true,\"dropped\":{dropped},\"resume_ts_ns\":{resume}}}"
        );
    }
    out.push_str(&to_jsonl(events));
    out
}

/// Chrome-trace thread id: 0 for engine-wide events, rail + 1 otherwise.
fn tid(e: &Event) -> u64 {
    if e.rail == NO_RAIL {
        0
    } else {
        u64::from(e.rail) + 1
    }
}

fn push_args(out: &mut String, e: &Event) {
    let _ = write!(
        out,
        "\"args\":{{\"seq\":{},\"size\":{},\"aux\":{}",
        e.seq, e.size, e.aux
    );
    if e.kind == EventKind::DecideSplit {
        let _ = write!(out, ",\"ratio_permille\":{}", e.aux);
    }
    out.push('}');
}

/// Microseconds with nanosecond precision, as Chrome expects for `ts`.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Render events as Chrome `trace_event` JSON.
///
/// `TxPost`/`TxDone` pairs (matched on actor, rail, and tx token) become
/// complete `"X"` spans so rail occupancy is visible as bars; everything
/// else is a thread-scoped instant `"i"`. Metadata events name each
/// actor's process `node<N>` and each thread after its rail, so a
/// multi-node merge reads naturally in Perfetto.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Metadata: name processes and threads once per (actor, tid).
    let mut named: Vec<(u16, u64)> = Vec::new();
    for e in events {
        if !named.iter().any(|&(a, _)| a == e.actor) {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"node{}\"}}}}",
                e.actor, e.actor
            );
        }
        if !named.contains(&(e.actor, tid(e))) {
            sep(&mut out);
            let tname = if e.rail == NO_RAIL {
                "engine".to_string()
            } else {
                format!("rail{}", e.rail)
            };
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                e.actor,
                tid(e),
                tname
            );
            named.push((e.actor, tid(e)));
        }
    }

    // Pair tx posts with completions: (actor, rail, token) -> post index.
    // A TxDone folded into a span is skipped; an unmatched one (its post
    // was overwritten in the ring) still shows up as an instant.
    let mut open: HashMap<(u16, u16, u64), usize> = HashMap::new();
    let mut span_end_ns: HashMap<usize, u64> = HashMap::new();
    let mut folded_done: Vec<bool> = vec![false; events.len()];
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::TxPost => {
                open.insert((e.actor, e.rail, e.seq), i);
            }
            EventKind::TxDone => {
                if let Some(post) = open.remove(&(e.actor, e.rail, e.seq)) {
                    span_end_ns.insert(post, e.ts_ns);
                    folded_done[i] = true;
                }
            }
            _ => {}
        }
    }

    for (i, e) in events.iter().enumerate() {
        if folded_done[i] {
            continue;
        }
        sep(&mut out);
        if e.kind == EventKind::TxPost {
            if let Some(&end_ns) = span_end_ns.get(&i) {
                let dur_ns = end_ns.saturating_sub(e.ts_ns);
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\",",
                    e.actor,
                    tid(e),
                    us(e.ts_ns),
                    us(dur_ns),
                    if e.aux == 1 { "tx_control" } else { "tx" },
                    e.kind.category()
                );
                push_args(&mut out, e);
                out.push('}');
                continue;
            }
        }
        emit_instant(&mut out, e);
    }
    out.push_str("]}");
    out
}

/// [`to_chrome_trace`] with an overflow marker: a global instant named
/// `ring_overflow` carrying the drop count, emitted at the first
/// surviving timestamp. The trace stays structurally valid either way —
/// a `TxDone` whose post was overwritten still renders as an instant,
/// never as a dangling span.
pub fn to_chrome_trace_with_overflow(events: &[Event], dropped: u64) -> String {
    let mut out = to_chrome_trace(events);
    if dropped > 0 {
        let resume = events.first().map(|e| e.ts_ns).unwrap_or(0);
        let tail = "]}";
        debug_assert!(out.ends_with(tail));
        out.truncate(out.len() - tail.len());
        if !out.ends_with('[') {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{},\"name\":\"ring_overflow\",\"cat\":\"obs\",\"args\":{{\"dropped\":{}}}}}",
            us(resume),
            dropped
        );
        out.push_str(tail);
    }
    out
}

fn emit_instant(out: &mut String, e: &Event) {
    let _ = write!(
        out,
        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"cat\":\"{}\",",
        e.actor,
        tid(e),
        us(e.ts_ns),
        e.kind.label(),
        e.kind.category()
    );
    push_args(out, e);
    out.push('}');
}

/// Human-readable digest: span, per-kind counts, per-rail tx volume, and
/// the split decisions that explain a hetero-split trace.
pub fn summary(events: &[Event]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("no events recorded\n");
        return out;
    }
    let t0 = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let t1 = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "{} events spanning {:.3} ms",
        events.len(),
        (t1 - t0) as f64 / 1e6
    );

    let mut counts: Vec<(EventKind, u64)> = Vec::new();
    for e in events {
        match counts.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((e.kind, 1)),
        }
    }
    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (k, n) in &counts {
        let _ = writeln!(out, "  {:>18} {}", k.label(), n);
    }

    let mut rail_bytes: HashMap<u16, u64> = HashMap::new();
    for e in events {
        if e.kind == EventKind::TxPost && e.rail != NO_RAIL {
            *rail_bytes.entry(e.rail).or_default() += e.size;
        }
    }
    let mut rails: Vec<(u16, u64)> = rail_bytes.into_iter().collect();
    rails.sort_unstable();
    for (r, b) in &rails {
        let _ = writeln!(out, "  rail {r}: {b} bytes posted");
    }

    let splits: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::DecideSplit)
        .collect();
    if !splits.is_empty() {
        let _ = writeln!(out, "split decisions ({} chunks):", splits.len());
        for e in splits.iter().take(12) {
            let _ = writeln!(
                out,
                "  t={:>12}ns send={} rail={} {} B ({:.1}% of split)",
                e.ts_ns,
                e.seq,
                e.rail,
                e.size,
                e.aux as f64 / 10.0
            );
        }
        if splits.len() > 12 {
            let _ = writeln!(out, "  ... {} more", splits.len() - 12);
        }
    }
    out
}

/// [`summary`] extended with the engine counters a trace alone cannot
/// show: syscall amortization on the threaded transports and the pool
/// magazine hit rate. `nmad trace --format summary` uses this when the
/// endpoint's stats are at hand.
pub fn summary_with_stats(events: &[Event], stats: &EngineStats) -> String {
    let mut out = summary(events);
    let sc = &stats.syscalls;
    let _ = writeln!(
        out,
        "syscalls: {:.2}/pkt overall (tx {:.2}/pkt: {} calls/{} frames; rx {:.2}/pkt: {} calls/{} frames)",
        sc.per_packet(),
        sc.tx_per_packet(),
        sc.tx_calls,
        sc.tx_frames,
        sc.rx_per_packet(),
        sc.rx_calls,
        sc.rx_frames
    );
    let dp = &stats.datapath;
    let _ = writeln!(
        out,
        "magazine hit rate: {:.1}% ({} magazine hits / {} takes, {} refills, {} flushes)",
        dp.magazine_hit_rate() * 100.0,
        dp.pool_magazine_hits,
        dp.pool_hits + dp.hot_path_allocs,
        dp.pool_magazine_refills,
        dp.pool_magazine_flushes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(100, EventKind::Submit).seq(1).size(4096).aux(1),
            Event::new(150, EventKind::DecideSplit)
                .rail(0)
                .seq(1)
                .size(2048)
                .aux(500),
            Event::new(150, EventKind::DecideSplit)
                .rail(1)
                .seq(1)
                .size(2048)
                .aux(500),
            Event::new(200, EventKind::TxPost).rail(0).seq(7).size(2100),
            Event::new(900, EventKind::TxDone).rail(0).seq(7).size(2100),
            Event::new(950, EventKind::Rx).rail(0).size(2100).actor(1),
        ]
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let s = to_jsonl(&sample_events());
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("\"kind\":\"decide_split\""));
        assert!(s.contains("\"rail\":null"));
    }

    #[test]
    fn summary_mentions_split_ratios() {
        let s = summary(&sample_events());
        assert!(s.contains("split decisions"), "{s}");
        assert!(s.contains("50.0% of split"), "{s}");
    }

    #[test]
    fn jsonl_overflow_marker_leads_the_stream() {
        let evs = sample_events();
        let s = to_jsonl_with_overflow(&evs, 17);
        let mut lines = s.lines();
        let marker = lines.next().unwrap();
        assert!(marker.contains("\"overflow\":true"), "{marker}");
        assert!(marker.contains("\"dropped\":17"), "{marker}");
        assert!(marker.contains("\"resume_ts_ns\":100"), "{marker}");
        assert_eq!(lines.count(), evs.len());
        // No drops: byte-identical to the plain exporter.
        assert_eq!(to_jsonl_with_overflow(&evs, 0), to_jsonl(&evs));
    }

    #[test]
    fn chrome_overflow_marker_keeps_the_trace_balanced() {
        let evs = sample_events();
        let s = to_chrome_trace_with_overflow(&evs, 5);
        assert!(s.ends_with("]}"), "{s}");
        assert!(s.contains("\"name\":\"ring_overflow\""), "{s}");
        assert!(s.contains("\"dropped\":5"), "{s}");
        assert_eq!(
            to_chrome_trace_with_overflow(&evs, 0),
            to_chrome_trace(&evs)
        );
        // Empty snapshot with drops still renders a valid trace.
        let empty = to_chrome_trace_with_overflow(&[], 3);
        assert!(empty.contains("ring_overflow"), "{empty}");
        assert!(empty.ends_with("]}"), "{empty}");
        assert!(
            !empty.contains("[,"),
            "no leading comma corruption: {empty}"
        );
    }

    #[test]
    fn orphaned_tx_done_renders_as_instant_not_dangling_span() {
        // The TxPost was overwritten in the ring; its TxDone must still
        // export cleanly as an instant.
        let evs = vec![Event::new(900, EventKind::TxDone).rail(0).seq(7).size(2100)];
        let s = to_chrome_trace_with_overflow(&evs, 1);
        assert!(s.contains("\"ph\":\"i\""), "{s}");
        assert!(s.contains("tx_done"), "{s}");
        assert!(!s.contains("\"ph\":\"X\""), "{s}");
    }

    #[test]
    fn summary_with_stats_appends_syscalls_and_magazine() {
        let mut stats = EngineStats::new(2);
        stats.syscalls.tx_calls = 10;
        stats.syscalls.tx_frames = 40;
        stats.datapath.pool_hits = 100;
        stats.datapath.pool_magazine_hits = 98;
        let s = summary_with_stats(&sample_events(), &stats);
        assert!(s.contains("tx 0.25/pkt"), "{s}");
        assert!(s.contains("magazine hit rate: 98.0%"), "{s}");
        assert!(
            s.contains("split decisions"),
            "still contains the base summary: {s}"
        );
    }

    // Chrome-trace structural validity (parse + matched spans) is tested
    // in `tests/chrome_trace.rs` with a real JSON parser.
}
