//! Per-request critical-path spans decomposed from lifecycle events.
//!
//! A bandwidth number says a message took 400 µs; it does not say
//! *where*. This module folds a merged event stream into per-message
//! legs:
//!
//! ```text
//! submit ──queue──▶ decide ──xfer──▶ ack_sent ──ack──▶ ack_received
//!   └──────────────────────total──────────────────────────┘
//! ```
//!
//! * **queue** — submit → the strategy's first decision for this send
//!   (backlog wait: how long the scheduler sat on the request);
//! * **xfer** — decision → the receiver's ack (injection + wire + rx +
//!   reassembly, the paper's transfer-time quantity);
//! * **ack** — the receiver's ack → the sender observing it;
//! * plus per-rail **injection** occupancy from `TxPost`/`TxDone` pairs.
//!
//! Cross-actor legs (`xfer`, `ack`) compare timestamps from two engines,
//! so they are only meaningful where both actors share a clock: the
//! simulator's virtual time or the in-process mem fabric's shared
//! wall-clock epoch. `nmad spans` drives exactly those. Aggregated
//! messages have no per-send decision event; they are attributed to the
//! first `DecideAggregate` at or after their submit (the engine is
//! single-threaded, so that is the decision that drained them or a
//! conservative overestimate of their wait).

use std::collections::HashMap;

use super::hist::Log2Histogram;
use super::recorder::{Event, EventKind, NO_RAIL};

/// Leg histograms over every attributable message in a trace.
#[derive(Clone, Debug, Default)]
pub struct SpanBreakdown {
    /// Messages with at least a submit→decide attribution.
    pub messages: u64,
    /// Submits with no attributable decision (e.g. overwritten in the
    /// ring) — excluded from the histograms rather than guessed at.
    pub unattributed: u64,
    /// Submit → first strategy decision, ns.
    pub queue_ns: Log2Histogram,
    /// Decision → receiver ack, ns (needs acked mode + shared clock).
    pub xfer_ns: Log2Histogram,
    /// Receiver ack → sender observing it, ns.
    pub ack_ns: Log2Histogram,
    /// Submit → sender observing the ack, ns.
    pub total_ns: Log2Histogram,
    /// Per-rail `TxPost`→`TxDone` injection occupancy, ns.
    pub rail_inject_ns: Vec<Log2Histogram>,
}

impl SpanBreakdown {
    /// Where the p99 of the total span is spent: the leg histograms'
    /// p99s, in `(queue, xfer, ack)` order. Zero for legs with no
    /// samples.
    pub fn p99_legs(&self) -> (u64, u64, u64) {
        (
            self.queue_ns.approx_quantile(0.99).unwrap_or(0),
            self.xfer_ns.approx_quantile(0.99).unwrap_or(0),
            self.ack_ns.approx_quantile(0.99).unwrap_or(0),
        )
    }
}

/// Decompose a merged, timestamp-ordered event stream (e.g.
/// [`super::merge_events`] output) into span legs.
pub fn decompose(events: &[Event]) -> SpanBreakdown {
    let mut out = SpanBreakdown::default();

    // Submit and first-decision times per (sender actor, send id).
    let mut submit: HashMap<(u16, u64), u64> = HashMap::new();
    let mut decide: HashMap<(u16, u64), u64> = HashMap::new();
    // Aggregate decisions per actor, in ts order, for the fallback.
    let mut aggregates: HashMap<u16, Vec<u64>> = HashMap::new();
    // Receiver acks: (receiver actor, send id) -> ts. The sender's send
    // ids are unique per engine; the matching ack is the one recorded by
    // a different actor.
    let mut ack_sent: HashMap<(u16, u64), u64> = HashMap::new();
    let mut ack_received: HashMap<(u16, u64), u64> = HashMap::new();
    // Open tx injections: (actor, rail, token) -> post ts.
    let mut open_tx: HashMap<(u16, u16, u64), u64> = HashMap::new();
    let mut max_rail = 0usize;

    for e in events {
        match e.kind {
            EventKind::Submit => {
                submit.entry((e.actor, e.seq)).or_insert(e.ts_ns);
            }
            EventKind::DecideEager | EventKind::DecideSplit | EventKind::DecideChunk => {
                decide.entry((e.actor, e.seq)).or_insert(e.ts_ns);
            }
            EventKind::DecideAggregate => {
                aggregates.entry(e.actor).or_default().push(e.ts_ns);
            }
            EventKind::AckSent => {
                ack_sent.entry((e.actor, e.seq)).or_insert(e.ts_ns);
            }
            EventKind::AckReceived => {
                ack_received.entry((e.actor, e.seq)).or_insert(e.ts_ns);
            }
            EventKind::TxPost if e.rail != NO_RAIL => {
                max_rail = max_rail.max(e.rail as usize);
                open_tx.insert((e.actor, e.rail, e.seq), e.ts_ns);
            }
            EventKind::TxDone if e.rail != NO_RAIL => {
                max_rail = max_rail.max(e.rail as usize);
                if let Some(post) = open_tx.remove(&(e.actor, e.rail, e.seq)) {
                    while out.rail_inject_ns.len() <= e.rail as usize {
                        out.rail_inject_ns.push(Log2Histogram::new());
                    }
                    out.rail_inject_ns[e.rail as usize].record(e.ts_ns.saturating_sub(post));
                }
            }
            _ => {}
        }
    }
    while out.rail_inject_ns.len() <= max_rail {
        out.rail_inject_ns.push(Log2Histogram::new());
    }

    for ts_list in aggregates.values_mut() {
        ts_list.sort_unstable();
    }

    for (&(actor, seq), &t_submit) in &submit {
        // Direct decision, else the first aggregate at or after submit.
        let t_decide = decide.get(&(actor, seq)).copied().or_else(|| {
            aggregates.get(&actor).and_then(|ts| {
                let i = ts.partition_point(|&t| t < t_submit);
                ts.get(i).copied()
            })
        });
        let Some(t_decide) = t_decide else {
            out.unattributed += 1;
            continue;
        };
        out.messages += 1;
        out.queue_ns.record(t_decide.saturating_sub(t_submit));

        // The receiver's ack is the one recorded by another actor.
        let t_ack_sent = ack_sent
            .iter()
            .find(|(&(a, s), _)| s == seq && a != actor)
            .map(|(_, &t)| t);
        if let Some(t_ack_sent) = t_ack_sent {
            out.xfer_ns.record(t_ack_sent.saturating_sub(t_decide));
            if let Some(&t_ack_rx) = ack_received.get(&(actor, seq)) {
                out.ack_ns.record(t_ack_rx.saturating_sub(t_ack_sent));
                out.total_ns.record(t_ack_rx.saturating_sub(t_submit));
            }
        }
    }
    out
}

/// Render a breakdown as an aligned table: one row per leg with
/// p50/p99/max, plus per-rail injection occupancy.
pub fn render(label: &str, b: &SpanBreakdown) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== spans: {label} ({} messages, {} unattributed) ==",
        b.messages, b.unattributed
    );
    let _ = writeln!(
        out,
        "{:>8} {:>6} {:>12} {:>12} {:>12}",
        "leg", "n", "p50_us", "p99_us", "max_us"
    );
    let us = |v: u64| v as f64 / 1_000.0;
    for (name, h) in [
        ("queue", &b.queue_ns),
        ("xfer", &b.xfer_ns),
        ("ack", &b.ack_ns),
        ("total", &b.total_ns),
    ] {
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            name,
            h.count(),
            us(h.approx_quantile(0.50).unwrap_or(0)),
            us(h.approx_quantile(0.99).unwrap_or(0)),
            us(h.max().unwrap_or(0)),
        );
    }
    for (r, h) in b.rail_inject_ns.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            format!("inject{r}"),
            h.count(),
            us(h.approx_quantile(0.50).unwrap_or(0)),
            us(h.approx_quantile(0.99).unwrap_or(0)),
            us(h.max().unwrap_or(0)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle(seq: u64, t0: u64) -> Vec<Event> {
        vec![
            Event::new(t0, EventKind::Submit).seq(seq).size(4096),
            Event::new(t0 + 100, EventKind::DecideEager)
                .rail(0)
                .seq(seq),
            Event::new(t0 + 120, EventKind::TxPost)
                .rail(0)
                .seq(seq + 1000)
                .size(4200),
            Event::new(t0 + 500, EventKind::TxDone)
                .rail(0)
                .seq(seq + 1000)
                .size(4200),
            Event::new(t0 + 900, EventKind::AckSent).seq(seq).actor(1),
            Event::new(t0 + 1_300, EventKind::AckReceived)
                .seq(seq)
                .aux(1_300),
        ]
    }

    #[test]
    fn legs_decompose_a_full_lifecycle() {
        let mut evs = lifecycle(0, 1_000);
        evs.extend(lifecycle(1, 50_000));
        let b = decompose(&evs);
        assert_eq!(b.messages, 2);
        assert_eq!(b.unattributed, 0);
        assert_eq!(b.queue_ns.count(), 2);
        assert_eq!(b.queue_ns.max(), Some(100));
        assert_eq!(b.xfer_ns.max(), Some(800));
        assert_eq!(b.ack_ns.max(), Some(400));
        assert_eq!(b.total_ns.max(), Some(1_300));
        assert_eq!(b.rail_inject_ns[0].count(), 2);
        assert_eq!(b.rail_inject_ns[0].max(), Some(380));
    }

    #[test]
    fn aggregated_sends_fall_back_to_the_next_aggregate_decision() {
        let evs = vec![
            Event::new(100, EventKind::Submit).seq(7).size(64),
            // An earlier aggregate (someone else's) must not match.
            Event::new(50, EventKind::DecideAggregate).size(256).aux(4),
            Event::new(400, EventKind::DecideAggregate).size(512).aux(8),
            Event::new(900, EventKind::AckSent).seq(7).actor(1),
            Event::new(1_000, EventKind::AckReceived).seq(7),
        ];
        let b = decompose(&evs);
        assert_eq!(b.messages, 1);
        assert_eq!(b.queue_ns.max(), Some(300), "matched the 400 ns aggregate");
        assert_eq!(b.total_ns.max(), Some(900));
    }

    #[test]
    fn unattributable_submits_are_counted_not_guessed() {
        let evs = vec![Event::new(100, EventKind::Submit).seq(9).size(64)];
        let b = decompose(&evs);
        assert_eq!(b.messages, 0);
        assert_eq!(b.unattributed, 1);
        assert!(b.queue_ns.is_empty());
    }

    #[test]
    fn two_directions_do_not_cross_match() {
        // Actor 0 and actor 1 both run send id 0 towards each other; the
        // ack for each send is the one the *other* actor recorded.
        let evs = vec![
            Event::new(100, EventKind::Submit).seq(0), // actor 0
            Event::new(110, EventKind::DecideEager).seq(0),
            Event::new(200, EventKind::Submit).seq(0).actor(1),
            Event::new(210, EventKind::DecideEager).seq(0).actor(1),
            Event::new(500, EventKind::AckSent).seq(0).actor(1), // acks actor 0's send
            Event::new(600, EventKind::AckSent).seq(0),          // actor 0 acks actor 1's send
            Event::new(700, EventKind::AckReceived).seq(0),      // actor 0 sees its ack
            Event::new(800, EventKind::AckReceived).seq(0).actor(1),
        ];
        let b = decompose(&evs);
        assert_eq!(b.messages, 2);
        assert_eq!(b.total_ns.count(), 2);
        // Actor 0: 700-100 = 600; actor 1: 800-200 = 600.
        assert_eq!(b.total_ns.max(), Some(600));
        assert_eq!(b.total_ns.min(), Some(600));
    }

    #[test]
    fn render_prints_every_leg() {
        let b = decompose(&lifecycle(0, 1_000));
        let s = render("greedy", &b);
        for leg in ["queue", "xfer", "ack", "total", "inject0"] {
            assert!(s.contains(leg), "{s}");
        }
    }
}
