//! Online SLO watchdog: EWMA-baseline rules over telemetry windows.
//!
//! The watchdog runs right where the windows close — inside the
//! scheduler's amortized section — so a sick rail is *reported* while
//! the run is still going, not discovered in a post-mortem dump. Four
//! rules cover the regressions the multi-rail literature targets:
//!
//! * **latency regression** — window p99 ack RTT blows past its EWMA
//!   baseline by a configured factor;
//! * **rail share imbalance** — a rail that used to carry an
//!   established share of the traffic collapses (the RailS/FlexLink
//!   failure mode: one rail silently idle while the others saturate);
//! * **retransmit storm** — the per-window retransmission count jumps
//!   over `max(baseline × factor, floor)`;
//! * **shed onset** — overload shedding surges relative to its own
//!   baseline (absolute shedding is routine under open-loop load, so
//!   only the *onset* is anomalous).
//!
//! Every rule warms up for a configured number of windows before it may
//! fire, carries a per-rule cooldown so a sustained incident produces
//! one alert rather than a storm of them, and appends to a bounded,
//! preallocated alert log (the fold path stays allocation-free). Fired
//! alerts are also recorded as [`crate::obs::EventKind::Alert`] events into the
//! flight-recorder ring by the engine, so they travel with every
//! existing exporter.

use std::fmt::Write as _;

use super::telemetry::Window;

/// Which rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// Window p99 latency regressed vs. its EWMA baseline.
    LatencyRegression,
    /// A rail's traffic share collapsed vs. its established baseline.
    RailImbalance,
    /// Retransmissions per window jumped over the storm threshold.
    RetransmitStorm,
    /// Overload shedding surged vs. its baseline.
    ShedOnset,
}

impl AlertKind {
    /// Stable numeric code, used as the `aux` word of the
    /// [`crate::obs::EventKind::Alert`] event.
    pub fn code(self) -> u64 {
        match self {
            AlertKind::LatencyRegression => 0,
            AlertKind::RailImbalance => 1,
            AlertKind::RetransmitStorm => 2,
            AlertKind::ShedOnset => 3,
        }
    }

    /// Inverse of [`AlertKind::code`].
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            0 => Some(AlertKind::LatencyRegression),
            1 => Some(AlertKind::RailImbalance),
            2 => Some(AlertKind::RetransmitStorm),
            3 => Some(AlertKind::ShedOnset),
            _ => None,
        }
    }

    /// Short stable name for exporters and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::LatencyRegression => "latency_regression",
            AlertKind::RailImbalance => "rail_imbalance",
            AlertKind::RetransmitStorm => "retransmit_storm",
            AlertKind::ShedOnset => "shed_onset",
        }
    }
}

/// One fired rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alert {
    /// Which rule.
    pub kind: AlertKind,
    /// Ordinal of the window that tripped it.
    pub window: u64,
    /// Engine-clock timestamp (the window's end).
    pub ts_ns: u64,
    /// Offending rail, when the rule is rail-scoped.
    pub rail: Option<usize>,
    /// The measured value that tripped the rule.
    pub value: f64,
    /// The EWMA baseline at fire time.
    pub baseline: f64,
}

/// Watchdog thresholds. Defaults are deliberately generous — the
/// watchdog's false-positive contract (a clean soak fires nothing) is a
/// gated test, so every factor errs far to the quiet side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Master switch; off costs nothing.
    pub enabled: bool,
    /// Windows each rule observes before it may fire (baselines still
    /// learn during warmup).
    pub warmup_windows: u64,
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest window).
    pub alpha: f64,
    /// Latency fires when window p99 > baseline × this factor...
    pub latency_factor: f64,
    /// ...and above this absolute floor, ns (suppresses regressions on
    /// sub-millisecond noise).
    pub latency_floor_ns: u64,
    /// Minimum RTT samples in a window for the latency rule to judge it.
    pub latency_min_samples: u64,
    /// Retransmit storm fires when window retransmits >
    /// `max(baseline × factor, floor)`.
    pub retransmit_factor: f64,
    /// Absolute retransmit floor per window (spurious RTO noise margin).
    pub retransmit_floor: u64,
    /// A rail's window share below this is a collapse...
    pub share_collapse: f64,
    /// ...but only if its baseline share was at least this established.
    pub share_baseline_min: f64,
    /// Total frames a window needs before the share rule judges it
    /// (idle windows have no meaningful shares).
    pub share_min_frames: u64,
    /// Shed onset fires when window sheds >
    /// `max(baseline × factor, floor)`.
    pub shed_factor: f64,
    /// Absolute shed floor per window.
    pub shed_floor: u64,
    /// Windows a rule stays quiet after firing (per kind, per rail for
    /// the share rule).
    pub cooldown_windows: u64,
    /// Bounded alert log capacity (preallocated; overflow is counted).
    pub max_alerts: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: false,
            warmup_windows: 3,
            alpha: 0.25,
            latency_factor: 4.0,
            latency_floor_ns: 5_000_000,
            latency_min_samples: 8,
            retransmit_factor: 4.0,
            retransmit_floor: 24,
            share_collapse: 0.05,
            share_baseline_min: 0.25,
            share_min_frames: 32,
            shed_factor: 8.0,
            shed_floor: 512,
            cooldown_windows: 4,
            max_alerts: 256,
        }
    }
}

impl WatchdogConfig {
    /// Sanity-check the knobs.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(self.latency_factor >= 1.0, "latency_factor must be >= 1");
        assert!(
            self.retransmit_factor >= 1.0,
            "retransmit_factor must be >= 1"
        );
        assert!(self.shed_factor >= 1.0, "shed_factor must be >= 1");
        assert!(
            self.share_collapse < self.share_baseline_min,
            "share_collapse must sit below share_baseline_min"
        );
        assert!(self.max_alerts > 0, "max_alerts must be positive");
    }
}

const NEVER: u64 = u64::MAX;

/// The watchdog state machine. One per engine; fed every closed window.
#[derive(Clone, Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    observed: u64,
    lat_ewma: f64,
    lat_windows: u64,
    retx_ewma: f64,
    shed_ewma: f64,
    share_ewma: Vec<f64>,
    share_windows: u64,
    alerts: Vec<Alert>,
    dropped: u64,
    /// Window ordinal each kind last fired at ([`NEVER`] = never).
    last_kind: [u64; 4],
    /// Per-rail cooldown for the share rule.
    last_share: Vec<u64>,
}

impl Watchdog {
    /// Watchdog for `n_rails` rails. The alert log is allocated here,
    /// once.
    pub fn new(n_rails: usize, cfg: WatchdogConfig) -> Self {
        cfg.validate();
        Watchdog {
            observed: 0,
            lat_ewma: 0.0,
            lat_windows: 0,
            retx_ewma: 0.0,
            shed_ewma: 0.0,
            share_ewma: vec![0.0; n_rails],
            share_windows: 0,
            alerts: Vec::with_capacity(cfg.max_alerts),
            dropped: 0,
            last_kind: [NEVER; 4],
            last_share: vec![NEVER; n_rails],
            cfg,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Alerts fired so far (bounded log, oldest first).
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts that did not fit the bounded log.
    pub fn dropped_alerts(&self) -> u64 {
        self.dropped
    }

    /// Windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.observed
    }

    /// True when no rule has fired.
    pub fn is_clean(&self) -> bool {
        self.alerts.is_empty() && self.dropped == 0
    }

    fn cooled(&self, slot: u64, ordinal: u64) -> bool {
        slot == NEVER || ordinal >= slot + self.cfg.cooldown_windows
    }

    fn fire(&mut self, a: Alert) {
        let idx = a.kind.code() as usize;
        self.last_kind[idx] = a.window;
        if let (AlertKind::RailImbalance, Some(r)) = (a.kind, a.rail) {
            self.last_share[r] = a.window;
        }
        if self.alerts.len() < self.cfg.max_alerts {
            self.alerts.push(a);
        } else {
            self.dropped += 1;
        }
    }

    /// Run every rule over one newly closed window. Returns how many
    /// alerts were appended to the log (the engine records that many
    /// [`crate::obs::EventKind::Alert`] events). Allocation-free.
    ///
    /// Baselines are *anomaly-gated*: a window that trips a rule (or
    /// would, were the rule not cooling down) does not feed that rule's
    /// EWMA. Otherwise a long incident — say a rail-0 outage spanning
    /// several windows — teaches the baseline that storms are normal,
    /// and a genuinely new incident minutes later (the rail-1 drop
    /// storm) slips under the inflated threshold. The cost is that a
    /// *permanent* regime change keeps re-alerting every cooldown
    /// until an operator adjusts the thresholds, which is the right
    /// default for an SLO watchdog.
    pub fn observe(&mut self, w: &Window) -> usize {
        if !self.cfg.enabled {
            return 0;
        }
        let before = self.alerts.len();
        let armed = self.observed >= self.cfg.warmup_windows;
        let a = self.cfg.alpha;

        // Latency regression: judged only on windows with enough samples.
        if w.latency.count() >= self.cfg.latency_min_samples {
            if let Some(p99) = w.latency.approx_quantile(0.99) {
                let p99f = p99 as f64;
                let regressed = self.lat_windows >= self.cfg.warmup_windows
                    && p99 > self.cfg.latency_floor_ns
                    && p99f > self.lat_ewma * self.cfg.latency_factor;
                if armed
                    && regressed
                    && self.cooled(
                        self.last_kind[AlertKind::LatencyRegression.code() as usize],
                        w.ordinal,
                    )
                {
                    self.fire(Alert {
                        kind: AlertKind::LatencyRegression,
                        window: w.ordinal,
                        ts_ns: w.end_ns,
                        rail: None,
                        value: p99f,
                        baseline: self.lat_ewma,
                    });
                }
                if self.lat_windows == 0 {
                    self.lat_ewma = p99f;
                } else if !(armed && regressed) {
                    self.lat_ewma = a * p99f + (1.0 - a) * self.lat_ewma;
                }
                self.lat_windows += 1;
            }
        }

        // Retransmit storm.
        let retx = w.retransmits as f64;
        let storm_threshold =
            (self.retx_ewma * self.cfg.retransmit_factor).max(self.cfg.retransmit_floor as f64);
        let storming = retx > storm_threshold;
        if armed
            && storming
            && self.cooled(
                self.last_kind[AlertKind::RetransmitStorm.code() as usize],
                w.ordinal,
            )
        {
            // Blame the rail carrying most of the storm, if any stands out.
            let rail = w
                .rails
                .iter()
                .enumerate()
                .max_by_key(|(_, r)| r.retransmits)
                .filter(|(_, r)| r.retransmits > 0)
                .map(|(i, _)| i);
            self.fire(Alert {
                kind: AlertKind::RetransmitStorm,
                window: w.ordinal,
                ts_ns: w.end_ns,
                rail,
                value: retx,
                baseline: self.retx_ewma,
            });
        }
        if !(armed && storming) {
            self.retx_ewma = a * retx + (1.0 - a) * self.retx_ewma;
        }

        // Rail share imbalance: judged only on windows with real traffic.
        // Collapse alone is not enough — bursty workloads legitimately
        // leave a rail idle for a window. A *dead* rail also shows
        // distress (failover reroutes, retransmits of its lost frames),
        // so the rule demands both.
        let total_frames: u64 = w.rails.iter().map(|r| r.tx_frames).sum();
        let total_bytes: u64 = w.rails.iter().map(|r| r.tx_bytes).sum();
        if total_frames >= self.cfg.share_min_frames && total_bytes > 0 {
            for (i, rw) in w.rails.iter().enumerate() {
                let share = rw.tx_bytes as f64 / total_bytes as f64;
                let distressed = rw.failovers > 0 || rw.retransmits > 0;
                let collapsed = self.share_windows >= self.cfg.warmup_windows
                    && self.share_ewma[i] >= self.cfg.share_baseline_min
                    && share < self.cfg.share_collapse
                    && distressed;
                if armed && collapsed && self.cooled(self.last_share[i], w.ordinal) {
                    self.fire(Alert {
                        kind: AlertKind::RailImbalance,
                        window: w.ordinal,
                        ts_ns: w.end_ns,
                        rail: Some(i),
                        value: share,
                        baseline: self.share_ewma[i],
                    });
                }
                if self.share_windows == 0 {
                    self.share_ewma[i] = share;
                } else if !(armed && collapsed) {
                    self.share_ewma[i] = a * share + (1.0 - a) * self.share_ewma[i];
                }
            }
            self.share_windows += 1;
        }

        // Shed onset.
        let sheds = w.sheds as f64;
        let shed_threshold =
            (self.shed_ewma * self.cfg.shed_factor).max(self.cfg.shed_floor as f64);
        let shedding = sheds > shed_threshold;
        if armed
            && shedding
            && self.cooled(
                self.last_kind[AlertKind::ShedOnset.code() as usize],
                w.ordinal,
            )
        {
            self.fire(Alert {
                kind: AlertKind::ShedOnset,
                window: w.ordinal,
                ts_ns: w.end_ns,
                rail: None,
                value: sheds,
                baseline: self.shed_ewma,
            });
        }
        if !(armed && shedding) {
            self.shed_ewma = a * sheds + (1.0 - a) * self.shed_ewma;
        }

        self.observed += 1;
        self.alerts.len() - before
    }

    /// Machine-readable verdict: the contract `nmad soak` and
    /// `verify.sh` check. Hand-written JSON (static labels only), same
    /// discipline as the other exporters.
    pub fn verdict_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"clean\":{},\"windows_observed\":{},\"alerts_fired\":{},\"alerts_dropped\":{},\"alerts\":[",
            self.is_clean(),
            self.observed,
            self.alerts.len() as u64 + self.dropped,
            self.dropped
        );
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"window\":{},\"ts_ns\":{},\"rail\":",
                a.kind.label(),
                a.window,
                a.ts_ns
            );
            match a.rail {
                Some(r) => {
                    let _ = write!(out, "{r}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"value\":{:.3},\"baseline\":{:.3}}}",
                a.value, a.baseline
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::telemetry::{RailWindow, Window};

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            warmup_windows: 2,
            retransmit_floor: 10,
            shed_floor: 50,
            latency_floor_ns: 1_000,
            latency_min_samples: 4,
            share_min_frames: 10,
            ..WatchdogConfig::default()
        }
    }

    fn window(ordinal: u64, n_rails: usize) -> Window {
        Window {
            ordinal,
            start_ns: ordinal * 1_000,
            end_ns: (ordinal + 1) * 1_000,
            rails: vec![RailWindow::default(); n_rails],
            ..Window::default()
        }
    }

    fn balanced(ordinal: u64) -> Window {
        let mut w = window(ordinal, 2);
        for r in &mut w.rails {
            r.tx_frames = 50;
            r.tx_bytes = 1 << 20;
        }
        w
    }

    #[test]
    fn disabled_watchdog_never_fires() {
        let mut d = Watchdog::new(2, WatchdogConfig::default());
        let mut w = window(0, 2);
        w.retransmits = 1_000_000;
        assert_eq!(d.observe(&w), 0);
        assert!(d.is_clean());
    }

    #[test]
    fn retransmit_storm_fires_after_warmup_with_cooldown() {
        let mut d = Watchdog::new(2, cfg());
        // Warmup: storms during warmup only feed the baseline.
        let mut w0 = balanced(0);
        w0.retransmits = 2;
        assert_eq!(d.observe(&w0), 0);
        let mut w1 = balanced(1);
        w1.retransmits = 1;
        assert_eq!(d.observe(&w1), 0);
        // Storm.
        let mut w2 = balanced(2);
        w2.retransmits = 500;
        w2.rails[1].retransmits = 400;
        assert_eq!(d.observe(&w2), 1);
        let a = d.alerts()[0];
        assert_eq!(a.kind, AlertKind::RetransmitStorm);
        assert_eq!(a.rail, Some(1));
        assert_eq!(a.window, 2);
        // Sustained storm stays quiet through the cooldown.
        let mut w3 = balanced(3);
        w3.retransmits = 600;
        assert_eq!(d.observe(&w3), 0);
        assert_eq!(d.alerts().len(), 1);
    }

    #[test]
    fn quiet_traffic_never_trips_the_storm_floor() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..20 {
            let mut w = balanced(i);
            w.retransmits = 3; // below the floor of 10, always
            d.observe(&w);
        }
        assert!(d.is_clean());
    }

    #[test]
    fn rail_share_collapse_fires_for_the_dead_rail() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..4 {
            assert_eq!(d.observe(&balanced(i)), 0);
        }
        // Rail 0 dies: all traffic shifts to rail 1, and the failover
        // shows up as distress on the dead rail.
        let mut w = window(4, 2);
        w.rails[0].tx_frames = 0;
        w.rails[0].tx_bytes = 0;
        w.rails[0].failovers = 1;
        w.rails[1].tx_frames = 100;
        w.rails[1].tx_bytes = 2 << 20;
        assert_eq!(d.observe(&w), 1);
        let a = d.alerts()[0];
        assert_eq!(a.kind, AlertKind::RailImbalance);
        assert_eq!(a.rail, Some(0));
        assert!(a.baseline > 0.4, "baseline share was ~0.5: {}", a.baseline);
    }

    #[test]
    fn quiet_rail_without_distress_is_not_a_collapse() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..4 {
            assert_eq!(d.observe(&balanced(i)), 0);
        }
        // A bursty workload leaves rail 0 idle for one window — no
        // failovers, no retransmits. That is traffic shape, not death.
        let mut w = window(4, 2);
        w.rails[0].tx_frames = 0;
        w.rails[0].tx_bytes = 0;
        w.rails[1].tx_frames = 100;
        w.rails[1].tx_bytes = 2 << 20;
        assert_eq!(d.observe(&w), 0);
        assert!(d.is_clean());
    }

    #[test]
    fn idle_windows_do_not_trip_the_share_rule() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..4 {
            d.observe(&balanced(i));
        }
        // An idle window (below share_min_frames) must not look like a
        // collapse of both rails.
        let w = window(4, 2);
        assert_eq!(d.observe(&w), 0);
        assert!(d.is_clean());
    }

    #[test]
    fn latency_regression_needs_samples_and_floor() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..4 {
            let mut w = balanced(i);
            for _ in 0..10 {
                w.latency.record(2_000);
            }
            assert_eq!(d.observe(&w), 0);
        }
        // A 10x p99 jump above the floor fires.
        let mut w = balanced(4);
        for _ in 0..10 {
            w.latency.record(20_000);
        }
        assert_eq!(d.observe(&w), 1);
        assert_eq!(d.alerts()[0].kind, AlertKind::LatencyRegression);
        // A jump on too few samples is ignored.
        let mut d2 = Watchdog::new(2, cfg());
        for i in 0..4 {
            let mut w = balanced(i);
            for _ in 0..10 {
                w.latency.record(2_000);
            }
            d2.observe(&w);
        }
        let mut w = balanced(4);
        w.latency.record(1_000_000);
        assert_eq!(d2.observe(&w), 0);
    }

    #[test]
    fn shed_onset_is_relative_to_baseline() {
        let mut d = Watchdog::new(2, cfg());
        // Routine shedding establishes a baseline without firing.
        for i in 0..6 {
            let mut w = balanced(i);
            w.sheds = 100;
            assert_eq!(d.observe(&w), 0, "steady shedding is not an onset");
        }
        // A surge fires.
        let mut w = balanced(6);
        w.sheds = 5_000;
        assert_eq!(d.observe(&w), 1);
        assert_eq!(d.alerts()[0].kind, AlertKind::ShedOnset);
    }

    #[test]
    fn verdict_json_is_machine_readable() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..3 {
            d.observe(&balanced(i));
        }
        let mut w = balanced(3);
        w.retransmits = 500;
        d.observe(&w);
        let v = d.verdict_json();
        assert!(v.contains("\"clean\":false"), "{v}");
        assert!(v.contains("\"kind\":\"retransmit_storm\""), "{v}");
        assert!(v.contains("\"windows_observed\":4"), "{v}");
        let clean = Watchdog::new(2, cfg()).verdict_json();
        assert!(clean.contains("\"clean\":true"), "{clean}");
        assert!(clean.ends_with("\"alerts\":[]}"), "{clean}");
    }

    #[test]
    fn alert_log_is_bounded() {
        let mut c = cfg();
        c.max_alerts = 2;
        c.cooldown_windows = 1;
        let mut d = Watchdog::new(2, c);
        for i in 0..10 {
            let mut w = balanced(i);
            // Grow 10x per window so the storm keeps outrunning its own
            // EWMA (which is at most the previous window's value).
            w.retransmits = 10u64.pow(i as u32 + 1);
            d.observe(&w);
        }
        assert_eq!(d.alerts().len(), 2);
        assert!(d.dropped_alerts() > 0);
        assert!(!d.is_clean());
    }

    #[test]
    fn incident_windows_do_not_poison_the_baseline() {
        let mut d = Watchdog::new(2, cfg());
        for i in 0..3 {
            let mut w = balanced(i);
            w.retransmits = 2;
            d.observe(&w);
        }
        // A 4-window storm (one alert, then cooldown) must not teach
        // the EWMA that storms are normal...
        for i in 3..7 {
            let mut w = balanced(i);
            w.retransmits = 1_000;
            d.observe(&w);
        }
        assert_eq!(d.alerts().len(), 1);
        // ...so after a calm window, a much smaller fresh storm still
        // reads as one, against the pre-incident baseline.
        let mut w7 = balanced(7);
        w7.retransmits = 2;
        assert_eq!(d.observe(&w7), 0);
        let mut w8 = balanced(8);
        w8.retransmits = 300;
        assert_eq!(d.observe(&w8), 1, "baseline inflated by the incident");
        assert!(d.alerts()[1].baseline < 10.0, "{}", d.alerts()[1].baseline);
    }

    #[test]
    fn alert_kind_codes_round_trip() {
        for k in [
            AlertKind::LatencyRegression,
            AlertKind::RailImbalance,
            AlertKind::RetransmitStorm,
            AlertKind::ShedOnset,
        ] {
            assert_eq!(AlertKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AlertKind::from_code(99), None);
    }
}
