//! Fixed-bucket log2 histograms.
//!
//! Bucket 0 holds the value 0; bucket `i` (1..=64) holds values in
//! `[2^(i-1), 2^i)`. Recording is a handful of integer ops with no
//! allocation, so histograms can live on the hot path next to the
//! counters in `EngineStats`.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// A log2 histogram with exact count/sum/min/max sidecars.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, else `ilog2(v) + 1`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram in. Associative and commutative (sums
    /// saturate, which preserves both for non-negative operands).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Inclusive value range covered by bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else if i >= 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Occupancy of bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Upper bound of the bucket holding the q-quantile (q in 0..=1),
    /// clamped to the observed max. `None` when empty.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Log2Histogram::bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Compact one-line rendering, e.g. for `nmad metrics`.
    pub fn render(&self) -> String {
        match (self.min(), self.max(), self.mean()) {
            (Some(min), Some(max), Some(mean)) => format!(
                "n={} min={} mean={:.0} p50<={} p99<={} max={}",
                self.count,
                min,
                mean,
                self.approx_quantile(0.50).unwrap_or(0),
                self.approx_quantile(0.99).unwrap_or(0),
                max
            ),
            _ => "n=0".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..LOG2_BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.approx_quantile(0.5), None);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.mean(), Some(26.5));
        // p50 falls in bucket_of(2) == bucket_of(3) == 2, upper bound 3.
        assert_eq!(h.approx_quantile(0.5), Some(3));
        assert_eq!(h.approx_quantile(1.0), Some(100));
    }

    fn from_samples(samples: &[u64]) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for &v in samples {
            h.record(v);
        }
        h
    }

    proptest! {
        /// merge(a, b) == merge(b, a) and merging is associative; a
        /// merged histogram equals the histogram of concatenated samples.
        #[test]
        fn merge_is_associative_and_commutative(
            a in prop::collection::vec(any::<u64>(), 0..32),
            b in prop::collection::vec(any::<u64>(), 0..32),
            c in prop::collection::vec(any::<u64>(), 0..32),
        ) {
            let (ha, hb, hc) = (from_samples(&a), from_samples(&b), from_samples(&c));

            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);

            let mut ab_c = ab.clone();
            ab_c.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut a_bc = ha.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);

            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&ab_c, &from_samples(&all));
        }
    }
}
