//! # nmad-core — the NewMadeleine engine
//!
//! This crate implements the paper's primary contribution: a communication
//! engine whose request processing is *disconnected from the API calls* and
//! instead driven by NIC activity (paper §2). The three-layer architecture
//! of Figure 1 maps onto the modules as follows:
//!
//! * **Collect layer** — [`request`] and the submit API on [`engine::Engine`]:
//!   applications build messages from one or more segments
//!   (`pack`-style incremental construction) and submit them without
//!   triggering any network activity;
//! * **Scheduling layer** — [`strategy`]: interchangeable *optimizing
//!   schedulers*. When a NIC becomes idle the engine queries the selected
//!   strategy for the most appropriate packet — aggregating small
//!   segments, splitting large ones across rails, or just forwarding;
//! * **Transmit layer** — [`driver`]: the engine ↔ runtime contract.
//!   The engine is runtime-agnostic: the discrete-event simulator and the
//!   real threaded transport both drive the *same* engine code through
//!   `next_tx` / `on_tx_done` / `on_packet`.
//!
//! Supporting modules: [`sampling`] implements the initialization-time
//! network sampling that feeds the adaptive splitting ratios (§3.4) plus
//! the [`sampling::OnlineCalibrator`] that keeps those ratios tracking
//! observed transfer times at runtime; [`stats`] counts what the
//! strategies actually did so tests can assert on behaviour, not just
//! timing.
//!
//! # A complete round trip
//!
//! The engine is passive; a minimal runtime is a loop that offers idle
//! rails and moves wire bytes:
//!
//! ```
//! use bytes::Bytes;
//! use nmad_core::{Engine, EngineConfig, StrategyKind};
//! use nmad_model::{platform, RailId};
//!
//! let mk = || Engine::new(
//!     EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
//!     platform::paper_platform().rails,
//!     vec![],
//! );
//! let (mut alice, mut bob) = (mk(), mk());
//! let conn = alice.conn_open();
//! bob.conn_open();
//!
//! let recv = bob.post_recv(conn);
//! let send = alice.submit_send(conn, vec![Bytes::from_static(b"hello rails")]);
//!
//! // The runtime loop: drain tx decisions, deliver, repeat to quiescence.
//! loop {
//!     let mut progressed = false;
//!     for r in 0..2 {
//!         for dir in 0..2 {
//!             let (tx, rx) = if dir == 0 {
//!                 (&mut alice, &mut bob)
//!             } else {
//!                 (&mut bob, &mut alice)
//!             };
//!             if let Some(d) = tx.next_tx(RailId(r)).unwrap() {
//!                 progressed = true;
//!                 tx.on_tx_done(RailId(r), d.token).unwrap();
//!                 rx.on_frame(RailId(r), &d.frame).unwrap();
//!             }
//!         }
//!     }
//!     if !progressed { break; }
//! }
//!
//! assert!(alice.send_complete(send));
//! let msg = bob.try_recv(recv).unwrap();
//! assert_eq!(&msg.segments[0][..], b"hello rails");
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod chaos;
pub mod config;
pub mod driver;
pub mod engine;
pub mod error;
pub mod health;
pub mod obs;
pub mod pool;
pub mod request;
pub mod sampling;
pub mod stats;
pub mod strategy;

pub use api::{MessageBuilder, MessageReader};
pub use chaos::ChaosState;
pub use config::{EngineConfig, OverloadConfig, ZooConfig};
pub use driver::{TxDecision, TxToken};
pub use engine::parallel::{
    outbox, spsc, AppOp, Completion, MpscQueue, OutboxReceiver, OutboxSender, ParallelHub,
    SchedPass, SchedScratch, SpscConsumer, SpscProducer, SyscallCounters, WorkSignal,
};
pub use engine::{Engine, OnPacketOutcome, ProgressOutcome};
pub use error::{EngineError, SubmitError};
pub use health::{HealthConfig, HealthTracker, RailState, RailTelemetry};
pub use obs::{
    Alert, AlertKind, Event, EventKind, FlightRecorder, Log2Histogram, SpanBreakdown,
    TelemetryAggregator, TelemetryConfig, Watchdog, WatchdogConfig, Window,
};
pub use pool::{BufferPool, Magazine, PoolCounters, SharedPool};
pub use request::{Backlog, RecvId, SendId};
pub use sampling::{
    split_ratio_permille, CalibrationConfig, CalibrationSnapshot, OnlineCalibrator, PerfTable,
};
pub use stats::{
    DataPathStats, EngineStats, ObsStats, OverloadStats, RailObs, ReactorStats, SyscallStats,
};
pub use strategy::{RailFlight, Strategy, StrategyKind};
