//! Incremental message construction and extraction.
//!
//! Paper §2: "Messages may be constituted of one or more segments through
//! incremental message construction/extraction commands." This module is
//! that API surface — the `pack`/`unpack` veneer of MADELEINE lineage —
//! over [`Engine::submit_send`] / [`crate::engine::Engine::try_recv`].
//!
//! Each `pack` call contributes one *segment*; segments are exactly the
//! units the optimizing schedulers aggregate or split, so how an
//! application packs directly shapes what the strategies can do.

use bytes::Bytes;
use nmad_wire::reassembly::MessageAssembly;
use nmad_wire::ConnId;

use crate::engine::Engine;
use crate::request::SendId;

/// Builds a message segment by segment before submitting it.
///
/// ```
/// use nmad_core::api::MessageBuilder;
/// use nmad_core::{Engine, EngineConfig, StrategyKind};
/// use nmad_model::platform;
///
/// let mut engine = Engine::new(
///     EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
///     platform::paper_platform().rails,
///     vec![],
/// );
/// let conn = engine.conn_open();
/// let send = MessageBuilder::new()
///     .pack(&42u64.to_le_bytes()[..])
///     .pack(b"payload".as_slice())
///     .submit(&mut engine, conn);
/// assert!(!engine.send_complete(send)); // nothing transmitted yet: collect layer only
/// ```
#[derive(Debug, Default)]
pub struct MessageBuilder {
    segments: Vec<Bytes>,
}

impl MessageBuilder {
    /// Empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one segment (copied into an owned buffer).
    pub fn pack(mut self, data: impl AsRef<[u8]>) -> Self {
        self.segments.push(Bytes::copy_from_slice(data.as_ref()));
        self
    }

    /// Append one segment without copying (caller already owns a `Bytes`).
    pub fn pack_shared(mut self, data: Bytes) -> Self {
        self.segments.push(data);
        self
    }

    /// Append a little-endian `u64` as its own segment (header fields).
    pub fn pack_u64(self, v: u64) -> Self {
        self.pack(v.to_le_bytes())
    }

    /// Append a little-endian `u32` as its own segment.
    pub fn pack_u32(self, v: u32) -> Self {
        self.pack(v.to_le_bytes())
    }

    /// Segments packed so far.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total payload bytes packed so far.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(Bytes::len).sum()
    }

    /// Submit to the engine's collect layer (non-blocking; nothing is
    /// transmitted until a NIC goes idle). Panics if no segment was packed.
    pub fn submit(self, engine: &mut Engine, conn: ConnId) -> SendId {
        engine.submit_send(conn, self.segments)
    }

    /// Take the packed segments without submitting (for transports that
    /// wrap the engine, e.g. `nmad-transport-mem`).
    pub fn into_segments(self) -> Vec<Bytes> {
        self.segments
    }
}

/// Extracts segments from a received message incrementally, mirroring the
/// `pack` order on the send side.
#[derive(Debug)]
pub struct MessageReader {
    segments: std::vec::IntoIter<Bytes>,
}

impl MessageReader {
    /// Wrap a completed message.
    pub fn new(assembly: MessageAssembly) -> Self {
        MessageReader {
            segments: assembly.segments.into_iter(),
        }
    }

    /// Extract the next segment, if any.
    pub fn unpack(&mut self) -> Option<Bytes> {
        self.segments.next()
    }

    /// Extract the next segment as a little-endian `u64`. Returns `None`
    /// when exhausted or when the segment is not exactly 8 bytes.
    pub fn unpack_u64(&mut self) -> Option<u64> {
        let seg = self.segments.next()?;
        let arr: [u8; 8] = seg.as_ref().try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Extract the next segment as a little-endian `u32`.
    pub fn unpack_u32(&mut self) -> Option<u32> {
        let seg = self.segments.next()?;
        let arr: [u8; 4] = seg.as_ref().try_into().ok()?;
        Some(u32::from_le_bytes(arr))
    }

    /// Segments not yet extracted.
    pub fn remaining(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::strategy::StrategyKind;
    use nmad_model::{platform, RailId};

    fn engine_pair() -> (Engine, Engine) {
        let mk = || {
            Engine::new(
                EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
                platform::paper_platform().rails,
                vec![],
            )
        };
        (mk(), mk())
    }

    fn pump(tx: &mut Engine, rx: &mut Engine) {
        for _ in 0..10_000 {
            let mut progressed = false;
            for r in 0..2 {
                let rail = RailId(r);
                if let Some(d) = tx.next_tx(rail).unwrap() {
                    progressed = true;
                    tx.on_tx_done(rail, d.token).unwrap();
                    rx.on_frame(rail, &d.frame).unwrap();
                }
                if let Some(d) = rx.next_tx(rail).unwrap() {
                    progressed = true;
                    rx.on_tx_done(rail, d.token).unwrap();
                    tx.on_frame(rail, &d.frame).unwrap();
                }
            }
            if !progressed {
                return;
            }
        }
        panic!("pump did not quiesce");
    }

    #[test]
    fn pack_roundtrips_through_unpack() {
        let (mut tx, mut rx) = engine_pair();
        let conn = tx.conn_open();
        rx.conn_open();
        let send = MessageBuilder::new()
            .pack_u64(0xDEAD_BEEF)
            .pack(b"first")
            .pack_u32(7)
            .pack(b"second segment")
            .submit(&mut tx, conn);
        let recv = rx.post_recv(conn);
        pump(&mut tx, &mut rx);
        assert!(tx.send_complete(send));
        let mut reader = MessageReader::new(rx.try_recv(recv).unwrap());
        assert_eq!(reader.remaining(), 4);
        assert_eq!(reader.unpack_u64(), Some(0xDEAD_BEEF));
        assert_eq!(&reader.unpack().unwrap()[..], b"first");
        assert_eq!(reader.unpack_u32(), Some(7));
        assert_eq!(&reader.unpack().unwrap()[..], b"second segment");
        assert!(reader.unpack().is_none());
    }

    #[test]
    fn builder_accounting() {
        let b = MessageBuilder::new().pack(b"abc").pack_u64(1).pack(b"");
        assert_eq!(b.segment_count(), 3);
        assert_eq!(b.total_len(), 3 + 8);
        let segs = b.into_segments();
        assert_eq!(segs.len(), 3);
        assert!(segs[2].is_empty());
    }

    #[test]
    fn typed_unpack_rejects_wrong_width() {
        let assembly = MessageAssembly {
            msg_id: 0,
            segments: vec![Bytes::from_static(b"not8bytes!")],
        };
        let mut r = MessageReader::new(assembly);
        assert_eq!(r.unpack_u64(), None);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_message_rejected() {
        let (mut tx, _) = engine_pair();
        let conn = tx.conn_open();
        MessageBuilder::new().submit(&mut tx, conn);
    }
}
