//! Shared chaos state: live fault knobs the soak harness turns while the
//! engine runs.
//!
//! PR 1's `FaultSpec` and PR 4's drift scenarios are fixed at
//! construction; a chaos soak needs to *change* loss rates and rail
//! bandwidth mid-run, from a driver thread, while transport workers keep
//! reading them on the hot path. `ChaosState` is that shared dial: a set
//! of per-rail atomics (f64 bit patterns in `AtomicU64`) the schedule
//! writes and the transports read lock-free. With no writer it reads as
//! identity (multiplier 1.0, boost 0.0), so wiring it into a transport
//! costs one relaxed load per frame and changes nothing by default.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One rail's live knobs.
#[derive(Debug)]
struct RailKnobs {
    /// Bandwidth multiplier applied to the rail's modelled wire time
    /// (f64 bits). 1.0 = nominal; 0.25 = rail running at a quarter speed
    /// (wire time x4); values > 1.0 speed the rail up.
    bandwidth_mult: AtomicU64,
    /// Additive drop probability folded into the transport's fault draw
    /// (f64 bits, clamped to [0, 1] at read).
    drop_boost: AtomicU64,
}

impl RailKnobs {
    fn identity() -> Self {
        RailKnobs {
            bandwidth_mult: AtomicU64::new(1.0_f64.to_bits()),
            drop_boost: AtomicU64::new(0.0_f64.to_bits()),
        }
    }
}

/// Live, shared fault dials — one set per rail. Cloneable handle
/// (internally `Arc`ed) so a chaos driver thread and every transport
/// worker can hold it at once.
#[derive(Clone, Debug)]
pub struct ChaosState {
    rails: Arc<Vec<RailKnobs>>,
}

impl ChaosState {
    /// Identity state (no bandwidth change, no extra drops) for
    /// `n_rails` rails.
    pub fn new(n_rails: usize) -> Self {
        ChaosState {
            rails: Arc::new((0..n_rails).map(|_| RailKnobs::identity()).collect()),
        }
    }

    /// Number of rails this state covers.
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }

    /// Set `rail`'s bandwidth multiplier (1.0 = nominal). Non-finite or
    /// non-positive values are clamped to a floor so wire times stay
    /// finite. Out-of-range rails are ignored.
    pub fn set_bandwidth_mult(&self, rail: usize, mult: f64) {
        if let Some(k) = self.rails.get(rail) {
            let m = if mult.is_finite() {
                mult.max(0.01)
            } else {
                1.0
            };
            k.bandwidth_mult.store(m.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current bandwidth multiplier for `rail` (1.0 when unknown).
    pub fn bandwidth_mult(&self, rail: usize) -> f64 {
        self.rails
            .get(rail)
            .map(|k| f64::from_bits(k.bandwidth_mult.load(Ordering::Relaxed)))
            .unwrap_or(1.0)
    }

    /// Set `rail`'s additive drop probability (clamped to [0, 1]).
    pub fn set_drop_boost(&self, rail: usize, p: f64) {
        if let Some(k) = self.rails.get(rail) {
            let p = if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.0
            };
            k.drop_boost.store(p.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current additive drop probability for `rail` (0.0 when unknown).
    pub fn drop_boost(&self, rail: usize) -> f64 {
        self.rails
            .get(rail)
            .map(|k| f64::from_bits(k.drop_boost.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }

    /// Reset every rail to identity (bandwidth 1.0, boost 0.0) — the
    /// "final fault heals" step of a soak.
    pub fn heal_all(&self) {
        for rail in 0..self.rails.len() {
            self.set_bandwidth_mult(rail, 1.0);
            self.set_drop_boost(rail, 0.0);
        }
    }

    /// True when every rail reads as identity.
    pub fn is_healed(&self) -> bool {
        (0..self.rails.len()).all(|r| self.bandwidth_mult(r) == 1.0 && self.drop_boost(r) == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_identity() {
        let c = ChaosState::new(2);
        assert_eq!(c.rail_count(), 2);
        assert_eq!(c.bandwidth_mult(0), 1.0);
        assert_eq!(c.drop_boost(1), 0.0);
        assert!(c.is_healed());
    }

    #[test]
    fn set_and_heal_roundtrip() {
        let c = ChaosState::new(2);
        c.set_bandwidth_mult(0, 0.25);
        c.set_drop_boost(1, 0.4);
        assert_eq!(c.bandwidth_mult(0), 0.25);
        assert_eq!(c.drop_boost(1), 0.4);
        assert!(!c.is_healed());
        c.heal_all();
        assert!(c.is_healed());
    }

    #[test]
    fn hostile_values_clamped() {
        let c = ChaosState::new(1);
        c.set_bandwidth_mult(0, 0.0);
        assert!(c.bandwidth_mult(0) >= 0.01, "wire time must stay finite");
        c.set_bandwidth_mult(0, f64::NAN);
        assert_eq!(c.bandwidth_mult(0), 1.0);
        c.set_drop_boost(0, 7.0);
        assert_eq!(c.drop_boost(0), 1.0);
        c.set_drop_boost(0, -1.0);
        assert_eq!(c.drop_boost(0), 0.0);
        // Out-of-range rails: reads fall back to identity, writes no-op.
        c.set_drop_boost(9, 1.0);
        assert_eq!(c.drop_boost(9), 0.0);
    }

    #[test]
    fn handle_is_shared_across_clones() {
        let a = ChaosState::new(1);
        let b = a.clone();
        a.set_drop_boost(0, 0.5);
        assert_eq!(b.drop_boost(0), 0.5);
    }
}
