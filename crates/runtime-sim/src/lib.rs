//! # nmad-runtime-sim — the engine on the simulated testbed
//!
//! Binds the NewMadeleine engine ([`nmad_core`]) to the discrete-event
//! kernel ([`nmad_sim`]) and the hardware models ([`nmad_model`]),
//! reproducing the paper's two-node Opteron + Myri-10G + Quadrics platform:
//!
//! * [`world`] — the event loop: CPU occupancy (PIO serialization, memcpy,
//!   per-packet overheads, per-rail poll costs), DMA draining through the
//!   max-min-fair bus, wire latencies, and the application callback layer;
//! * [`pingpong`] — the paper's benchmark (§3.1): a regular ping-pong with
//!   series of non-blocking sends/recvs and multi-segment messages;
//! * [`sampling`] — genuine init-time sampling: per-rail ping-pongs over a
//!   size ladder producing the [`nmad_core::PerfTable`]s that feed the
//!   adaptive splitting ratios;
//! * [`sweep`] — size sweeps producing the latency/bandwidth series of
//!   every figure, as serializable rows.

#![warn(missing_docs)]

pub mod pingpong;
pub mod sampling;
pub mod sweep;
pub mod timeline;
pub mod world;

pub use pingpong::{run_pingpong, PingPongResult, PingPongSpec};
pub use sampling::{sample_platform, sample_rail};
pub use sweep::{bandwidth_sizes, latency_sizes, SeriesPoint, Sweep};
pub use timeline::Timeline;
pub use world::{AppLogic, BandwidthDrift, FaultPlan, NodeApi, SimWorld};
