//! Initialization-time network sampling, for real (paper §3.4).
//!
//! "According to samplings performed on the different available NICs (this
//! step is done at the NewMadeleine initialization time), an adaptive
//! stripping ratio can be determined."
//!
//! Each rail is measured in isolation with the library's own ping-pong
//! machinery (single-rail strategy on a single-rail platform) across a
//! size ladder; the resulting [`PerfTable`]s are installed into the
//! engines and drive [`nmad_core::sampling::split_weights`].

use nmad_core::sampling::default_ladder;
use nmad_core::{EngineConfig, PerfTable, StrategyKind};
use nmad_model::{NicModel, Platform};

use crate::pingpong::{run_pingpong, PingPongSpec};

/// Sample one rail: measured one-way times over `ladder`.
pub fn sample_rail(nic: &NicModel, ladder: &[u64]) -> PerfTable {
    let platform = nmad_model::platform::single_rail_platform(nic.clone());
    let points: Vec<(u64, f64)> = ladder
        .iter()
        .map(|&size| {
            let spec = PingPongSpec {
                warmup: 1,
                iters: 2,
                ..PingPongSpec::new(
                    platform.clone(),
                    EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
                    size as usize,
                )
            };
            (size, run_pingpong(&spec).one_way.as_us_f64())
        })
        .collect();
    PerfTable::new(points)
}

/// Sample every rail of `platform` over the default ladder.
pub fn sample_platform(platform: &Platform) -> Vec<PerfTable> {
    let ladder = default_ladder();
    platform
        .rails
        .iter()
        .map(|nic| sample_rail(nic, &ladder))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_model::platform;

    #[test]
    fn sampled_tables_track_analytic_models() {
        // The measured tables include engine overheads, so they sit at or
        // above the analytic curves but within a small factor.
        let ladder: Vec<u64> = vec![4, 4096, 1 << 20, 8 << 20];
        let nic = platform::quadrics_qm500();
        let sampled = sample_rail(&nic, &ladder);
        for &s in &ladder {
            let measured = sampled.time_for(s);
            let analytic = nic.analytic_oneway(s as usize).as_us_f64();
            assert!(
                measured >= analytic * 0.95,
                "size {s}: measured {measured} below analytic {analytic}"
            );
            assert!(
                measured <= analytic * 1.5 + 1.0,
                "size {s}: measured {measured} implausibly above analytic {analytic}"
            );
        }
    }

    #[test]
    fn sampled_ratio_favours_myri() {
        let ladder: Vec<u64> = vec![32 << 10, 256 << 10, 1 << 20, 8 << 20];
        let p = platform::paper_platform();
        let myri = sample_rail(&p.rails[0], &ladder);
        let quad = sample_rail(&p.rails[1], &ladder);
        let w = nmad_core::sampling::split_weights(&[&myri, &quad], 8 << 20);
        let frac = w[0] / (w[0] + w[1]);
        assert!(
            (0.52..0.68).contains(&frac),
            "sampled Myri fraction {frac} out of band"
        );
    }
}
