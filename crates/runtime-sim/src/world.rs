//! The simulated two-node world.
//!
//! Each node owns a real [`Engine`] plus the modelled hardware: a CPU
//! ([`nmad_sim::MultiResource`]) that serializes PIO injections, memcpys and software
//! overheads; an I/O bus ([`FluidChannel`]) that DMA transfers drain
//! through with max-min fairness; and the per-rail wire latencies. The
//! event loop implements the timing semantics the paper's observations
//! hinge on:
//!
//! * **PIO** occupies a CPU core for the whole injection, so with the
//!   paper's single-threaded engine (1 core) two sub-8 KiB packets on
//!   different rails serialize (the §3.2 crossover); configuring
//!   `HostModel::cores = 2` simulates the §4 future-work multi-threaded
//!   engine with parallel PIO;
//! * **DMA** costs only a descriptor setup on the CPU, then contends on
//!   the bus (the 1675 MB/s plateau and the Fig. 7 hetero-split headroom);
//! * every scheduling pass pays `sched_cost + Σ poll_cost(rail)` — the
//!   poll penalty of carrying a second NIC that Fig. 6 isolates.

use std::collections::HashMap;

use bytes::Bytes;
use nmad_core::engine::Engine;
use nmad_core::obs::{summary, Event, EventKind, FlightRecorder};
use nmad_core::request::{RecvId, SendId};
use nmad_core::EngineConfig;
use nmad_model::{HostModel, NicModel, Platform, RailId, TxMode};
use nmad_sim::{EventQueue, FlowId, FluidChannel, MultiResource, SimDuration, SimTime};
use nmad_wire::reassembly::MessageAssembly;
use nmad_wire::{ConnId, PacketFrame};

use crate::timeline::Timeline;

/// Application logic running on one simulated node: reacts to completions
/// and drives new requests through [`NodeApi`].
pub trait AppLogic {
    /// Called once at simulation start.
    fn on_start(&mut self, api: &mut NodeApi<'_>);
    /// A posted receive completed; the reassembled message is handed over.
    fn on_recv_complete(&mut self, recv: RecvId, msg: MessageAssembly, api: &mut NodeApi<'_>) {
        let _ = (recv, msg, api);
    }
    /// A submitted send reached local completion.
    fn on_send_complete(&mut self, send: SendId, api: &mut NodeApi<'_>) {
        let _ = (send, api);
    }
    /// A sampling pong arrived (probe id, payload length).
    fn on_sample_pong(&mut self, probe_id: u64, len: usize, api: &mut NodeApi<'_>) {
        let _ = (probe_id, len, api);
    }
}

/// No-op application (pure reactive peer driven by the engine).
pub struct IdleApp;
impl AppLogic for IdleApp {
    fn on_start(&mut self, _api: &mut NodeApi<'_>) {}
}

/// Link fault plan for the simulated fabric: one rail's link silently
/// loses every packet (data, acks, probes — both directions) during a
/// window, then recovers. Enabling a plan also turns on periodic engine
/// progress ticks, which drive the health tracker's timer wheel —
/// without a plan the simulation behaves exactly as before.
///
/// A plan can carry a [`BandwidthDrift`] rider: instead of (or in
/// addition to) an outage, one rail's link bandwidth is scaled during a
/// window — the deterministic test harness for online recalibration.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Rail whose link fails.
    pub rail: usize,
    /// Packets arriving in `[down_at, up_at)` are lost.
    pub down_at: SimTime,
    /// End of the outage window.
    pub up_at: SimTime,
    /// Interval between engine progress ticks (timer-wheel granularity).
    pub tick: SimDuration,
    /// Stop ticking at this virtual time (bounds the event queue).
    pub until: SimTime,
    /// Optional bandwidth drift applied on top of (or instead of) the
    /// outage window.
    pub drift: Option<BandwidthDrift>,
}

/// Mid-run bandwidth drift: within `[from, to)`, `rail`'s effective link
/// bandwidth is multiplied by `factor` (`0.5` = a 2× degradation; values
/// above 1 model a recovering or upgraded link). The scale applies to DMA
/// drains started inside the window — the regime the split tables govern;
/// PIO injections (small control traffic) are unaffected.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthDrift {
    /// Rail whose link drifts.
    pub rail: usize,
    /// Drift begins (inclusive).
    pub from: SimTime,
    /// Drift ends (exclusive).
    pub to: SimTime,
    /// Bandwidth multiplier inside the window; must be positive.
    pub factor: f64,
}

impl FaultPlan {
    /// A plan with no outage window — only the drift rider (plus the
    /// periodic engine progress ticks every plan provides).
    pub fn drift_only(drift: BandwidthDrift, tick: SimDuration, until: SimTime) -> Self {
        FaultPlan {
            rail: drift.rail,
            down_at: SimTime::ZERO,
            up_at: SimTime::ZERO,
            tick,
            until,
            drift: Some(drift),
        }
    }

    fn covers(&self, t: SimTime) -> bool {
        t >= self.down_at && t < self.up_at
    }

    /// Bandwidth multiplier for `rail` at virtual time `t`.
    fn bandwidth_factor(&self, rail: usize, t: SimTime) -> f64 {
        match self.drift {
            Some(d) if d.rail == rail && t >= d.from && t < d.to => {
                assert!(d.factor > 0.0, "drift factor must be positive");
                d.factor
            }
            _ => 1.0,
        }
    }
}

struct PendingDma {
    rail: usize,
    token: nmad_core::driver::TxToken,
    frame: PacketFrame,
    started: SimTime,
}

/// One simulated node: engine + hardware occupancy state.
pub struct Node {
    host: HostModel,
    rails: Vec<NicModel>,
    /// The real NewMadeleine engine.
    pub engine: Engine,
    cpu: MultiResource,
    bus: FluidChannel,
    dma: HashMap<FlowId, PendingDma>,
    kick_pending: bool,
}

impl Node {
    fn new(platform: &Platform, config: EngineConfig) -> Self {
        Node {
            host: platform.host.clone(),
            rails: platform.rails.clone(),
            engine: Engine::new(config, platform.rails.clone(), vec![]),
            cpu: MultiResource::new("cpu", platform.host.cores),
            bus: FluidChannel::new("iobus", platform.host.bus_capacity),
            dma: HashMap::new(),
            kick_pending: false,
        }
    }

    /// CPU utilization so far.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }
}

#[derive(Debug)]
enum Ev {
    /// Request a scheduling pass on a node (CPU must be grabbed first).
    Kick(usize),
    /// The scheduling pass itself (CPU grant reached).
    Sched(usize),
    /// A PIO injection finished: rail idle, packet on the wire.
    PioDone {
        node: usize,
        rail: usize,
        token: nmad_core::driver::TxToken,
    },
    /// CPU finished programming a DMA descriptor: start draining.
    DmaStart {
        node: usize,
        rail: usize,
        token: nmad_core::driver::TxToken,
        frame: PacketFrame,
    },
    /// Re-examine the node's bus for flow completions.
    BusCheck { node: usize, epoch: u64 },
    /// A packet reached the destination NIC (before rx software overhead).
    /// The frame travels as refcounted parts — the modelled wire moves
    /// bytes without the simulator ever flattening them.
    Arrive {
        node: usize,
        rail: usize,
        frame: PacketFrame,
    },
    /// Rx overhead paid; hand the frame to the engine.
    Deliver {
        node: usize,
        rail: usize,
        frame: PacketFrame,
    },
    /// Periodic engine progress pass (retransmission timers, health
    /// probes). Only scheduled when a [`FaultPlan`] is active.
    Tick,
}

/// Handle through which application logic interacts with its node.
pub struct NodeApi<'a> {
    idx: usize,
    node: &'a mut Node,
    queue: &'a mut EventQueue<Ev>,
    now: SimTime,
}

impl NodeApi<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Submit a non-blocking multi-segment send (collect layer only; the
    /// engine transmits when NICs go idle).
    pub fn submit_send(&mut self, conn: ConnId, segments: Vec<Bytes>) -> SendId {
        let id = self.node.engine.submit_send(conn, segments);
        let g = self.node.cpu.acquire(self.now, self.node.host.submit_cost);
        schedule_kick(self.idx, self.node, self.queue, g.end);
        id
    }

    /// Post a non-blocking receive. Posting can release parked rendezvous
    /// grants, so the engine gets a scheduling pass if work appeared.
    pub fn post_recv(&mut self, conn: ConnId) -> RecvId {
        let id = self.node.engine.post_recv(conn);
        if self.node.engine.has_tx_work() {
            let at = self.now;
            schedule_kick(self.idx, self.node, self.queue, at);
        }
        id
    }

    /// Occupy the CPU with application computation for `dur`. While the
    /// CPU computes, submitted requests pile up in the backlog — the §2
    /// scenario where "the communication support accumulates packets while
    /// the NIC is busy" (here: while the *CPU* is busy) and the optimizer
    /// then processes the whole window at once.
    pub fn compute(&mut self, dur: SimDuration) {
        let g = self.node.cpu.acquire(self.now, dur);
        schedule_kick(self.idx, self.node, self.queue, g.end);
    }

    /// Send a sampling probe of `size` zero bytes on `conn` (echoed back
    /// by the peer engine as a pong).
    pub fn send_sample(&mut self, conn: ConnId, probe_id: u64, size: usize) {
        self.node.engine.send_sample(conn, probe_id, size);
        let g = self.node.cpu.acquire(self.now, self.node.host.submit_cost);
        schedule_kick(self.idx, self.node, self.queue, g.end);
    }

    /// Engine statistics of this node.
    pub fn stats(&self) -> &nmad_core::EngineStats {
        self.node.engine.stats()
    }
}

fn schedule_kick(idx: usize, node: &mut Node, queue: &mut EventQueue<Ev>, at: SimTime) {
    if node.kick_pending {
        return;
    }
    node.kick_pending = true;
    queue.push(at, Ev::Kick(idx));
}

/// The two-node simulation.
pub struct SimWorld<A: AppLogic, B: AppLogic> {
    queue: EventQueue<Ev>,
    nodes: Vec<Node>,
    app0: Option<A>,
    app1: Option<B>,
    /// Hardware-model flight recorder (disabled by default; see
    /// [`SimWorld::enable_recording`]). Sim-only activity — PIO
    /// completions, DMA/bus starts, launches, fault-plan losses,
    /// app-level completions — lands here with `actor` = node index;
    /// engine-level lifecycle events land in each node engine's own
    /// recorder. Consumers merge the three streams by timestamp.
    pub recorder: FlightRecorder,
    /// Optional activity timeline (see [`crate::timeline`]).
    pub timeline: Option<Timeline>,
    faults: Option<FaultPlan>,
    /// Packets lost to the fault plan's outage window.
    pub packets_lost: u64,
    events: u64,
}

impl<A: AppLogic, B: AppLogic> SimWorld<A, B> {
    /// Build a symmetric two-node world: both ends run `platform` with an
    /// engine configured by `config`.
    pub fn new(platform: &Platform, config: EngineConfig, app0: A, app1: B) -> Self {
        SimWorld {
            queue: EventQueue::new(),
            nodes: vec![
                Node::new(platform, config.clone()),
                Node::new(platform, config),
            ],
            app0: Some(app0),
            app1: Some(app1),
            recorder: FlightRecorder::disabled(),
            timeline: None,
            faults: None,
            packets_lost: 0,
            events: 0,
        }
    }

    /// Install a link fault plan (see [`FaultPlan`]).
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Start flight-recording: the world keeps `capacity` hardware-model
    /// events per stream, and both node engines get rings of the same
    /// capacity for their lifecycle events. While recording is on, the
    /// dispatcher also forwards virtual time to the engines via
    /// [`Engine::observe_clock`] so engine event timestamps are exact
    /// (without recording, the engine clock only advances on fault-plan
    /// ticks — preserved so timer behaviour is bit-identical to
    /// non-recording runs).
    pub fn enable_recording(&mut self, capacity: usize) {
        self.recorder = FlightRecorder::with_capacity(capacity);
        for n in &mut self.nodes {
            *n.engine.recorder_mut() = FlightRecorder::with_capacity(capacity);
        }
    }

    /// All recorded events (hardware-model stream plus both engines),
    /// merged by timestamp. The world stream already carries node indices
    /// in `actor`; engine events are re-stamped with their node index.
    pub fn merged_events(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.recorder.iter().copied().collect();
        for (i, n) in self.nodes.iter().enumerate() {
            all.extend(n.engine.recorder().iter().map(|e| {
                let mut e = *e;
                e.actor = i as u16;
                e
            }));
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    fn now_ns(now: SimTime) -> u64 {
        // SimTime counts picoseconds; the recorder timestamps in ns.
        now.0 / 1_000
    }

    /// Record a hardware-model event (no-op while recording is off).
    fn sim_event(&mut self, now: SimTime, kind: EventKind, node: usize) -> Option<Event> {
        if !self.recorder.is_enabled() {
            return None;
        }
        Some(Event::new(Self::now_ns(now), kind).actor(node as u16))
    }

    /// Start recording an activity timeline (CPU, rails, bus).
    pub fn enable_timeline(&mut self) {
        self.timeline = Some(Timeline::new());
    }

    /// Open a logical channel on both engines; returns the shared id.
    pub fn open_conn(&mut self) -> ConnId {
        let c0 = self.nodes[0].engine.conn_open();
        let c1 = self.nodes[1].engine.conn_open();
        assert_eq!(c0, c1, "endpoints must open connections in lockstep");
        c0
    }

    /// Replace both engines' sampling tables.
    pub fn set_tables(&mut self, tables: Vec<nmad_core::PerfTable>) {
        self.nodes[0].engine.set_tables(tables.clone());
        self.nodes[1].engine.set_tables(tables);
    }

    /// Node accessor.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Application of node 0.
    pub fn app0(&self) -> &A {
        self.app0.as_ref().expect("app present between events")
    }

    /// Application of node 1.
    pub fn app1(&self) -> &B {
        self.app1.as_ref().expect("app present between events")
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Run the apps' `on_start` hooks and process events until the queue
    /// drains or `max_events` is hit (a safety net against livelock bugs —
    /// exceeding it panics with the trace rendered).
    pub fn run(&mut self, max_events: u64) {
        // Start both apps at t = 0.
        self.run_app_hook(0, SimTime::ZERO, AppHook::Start);
        self.run_app_hook(1, SimTime::ZERO, AppHook::Start);
        if let Some(p) = &self.faults {
            self.queue.push(SimTime::ZERO + p.tick, Ev::Tick);
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.events += 1;
            if self.events > max_events {
                panic!(
                    "simulation exceeded {max_events} events at {now}; recorded:\n{}",
                    summary(&self.merged_events())
                );
            }
            self.dispatch(now, ev);
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        if self.recorder.is_enabled() {
            // Exact timestamps for engine-side events. Only done while
            // recording so non-recording runs keep the tick-quantized
            // engine clock (identical timer behaviour).
            let ns = Self::now_ns(now);
            for n in &mut self.nodes {
                n.engine.observe_clock(ns);
            }
        }
        match ev {
            Ev::Kick(i) => {
                if !self.nodes[i].engine.has_tx_work() {
                    self.nodes[i].kick_pending = false;
                    return;
                }
                // One scheduling pass: the global scheduler polls every
                // enabled NIC and runs the strategy.
                let poll_total: SimDuration = self.nodes[i].rails.iter().map(|r| r.poll_cost).sum();
                let cost = self.nodes[i].host.sched_cost + poll_total;
                let g = self.nodes[i].cpu.acquire(now, cost);
                self.queue.push(g.end, Ev::Sched(i));
            }
            Ev::Sched(i) => {
                self.nodes[i].kick_pending = false;
                for r in 0..self.nodes[i].rails.len() {
                    let d = self.nodes[i]
                        .engine
                        .next_tx(RailId(r))
                        .expect("engine invariant violated");
                    if let Some(decision) = d {
                        // The rail is busy until its on_tx_done.
                        self.launch(i, r, decision, now);
                    }
                }
            }
            Ev::PioDone { node, rail, token } => {
                let completed = self.nodes[node]
                    .engine
                    .on_tx_done(RailId(rail), token)
                    .expect("tx token must be valid");
                if let Some(e) = self.sim_event(now, EventKind::SimNic, node) {
                    self.recorder.record(e.rail(rail));
                }
                for s in completed {
                    self.fire_send_complete(node, now, s);
                }
                schedule_kick(node, &mut self.nodes[node], &mut self.queue, now);
            }
            Ev::DmaStart {
                node,
                rail,
                token,
                frame,
            } => {
                let mut cap = self.nodes[node].rails[rail].link_bandwidth;
                if let Some(p) = &self.faults {
                    // Bandwidth drift: a flow started inside the window
                    // drains at the scaled rate for its whole lifetime
                    // (fluid approximation — chunk drains are short
                    // relative to the drift window).
                    cap *= p.bandwidth_factor(rail, now);
                }
                let len = frame.wire_len() as u64;
                let flow = self.nodes[node].bus.add_flow(now, len, cap);
                self.nodes[node].dma.insert(
                    flow,
                    PendingDma {
                        rail,
                        token,
                        frame,
                        started: now,
                    },
                );
                if let Some(e) = self.sim_event(now, EventKind::SimBus, node) {
                    self.recorder.record(e.rail(rail).size(len));
                }
                self.schedule_bus_check(node, now);
            }
            Ev::BusCheck { node, epoch } => {
                if epoch != self.nodes[node].bus.epoch() {
                    return; // stale: rates changed since this was scheduled
                }
                let Some((fid, t, ep)) = self.nodes[node].bus.next_completion() else {
                    return;
                };
                debug_assert_eq!(ep, epoch);
                debug_assert!(t <= now, "bus check fired early: {t:?} vs {now:?}");
                if self.nodes[node].bus.try_complete(now, fid) {
                    let PendingDma {
                        rail,
                        token,
                        frame,
                        started,
                    } = self.nodes[node]
                        .dma
                        .remove(&fid)
                        .expect("completed flow must be tracked");
                    if let Some(tl) = &mut self.timeline {
                        tl.record(
                            format!("n{node}.rail{rail}"),
                            started,
                            now,
                            format!("dma {}B", frame.wire_len()),
                        );
                    }
                    let completed = self.nodes[node]
                        .engine
                        .on_tx_done(RailId(rail), token)
                        .expect("tx token must be valid");
                    let dst = 1 - node;
                    let lat = self.nodes[node].rails[rail].wire_latency;
                    self.queue.push(
                        now + lat,
                        Ev::Arrive {
                            node: dst,
                            rail,
                            frame,
                        },
                    );
                    for s in completed {
                        self.fire_send_complete(node, now, s);
                    }
                    schedule_kick(node, &mut self.nodes[node], &mut self.queue, now);
                }
                self.schedule_bus_check(node, now);
            }
            Ev::Arrive { node, rail, frame } => {
                if let Some(p) = &self.faults {
                    if p.rail == rail && p.covers(now) {
                        self.packets_lost += 1;
                        if let Some(e) = self.sim_event(now, EventKind::SimNic, node) {
                            self.recorder
                                .record(e.rail(rail).size(frame.wire_len() as u64).aux(1));
                        }
                        return;
                    }
                }
                let rx = self.nodes[node].rails[rail].rx_overhead;
                let g = self.nodes[node].cpu.acquire(now, rx);
                if let Some(tl) = &mut self.timeline {
                    tl.record(format!("n{node}.cpu"), g.start, g.end, "rx");
                }
                self.queue.push(g.end, Ev::Deliver { node, rail, frame });
            }
            Ev::Deliver { node, rail, frame } => {
                let outcome = self.nodes[node]
                    .engine
                    .on_frame(RailId(rail), &frame)
                    .unwrap_or_else(|e| panic!("n{node} rx error: {e}"));
                for recv in outcome.completed_recvs {
                    let msg = self.nodes[node]
                        .engine
                        .try_recv(recv)
                        .expect("completed recv has a result");
                    if let Some(e) = self.sim_event(now, EventKind::SimApp, node) {
                        self.recorder.record(e.seq(recv.0).aux(1));
                    }
                    self.run_app_hook(node, now, AppHook::Recv(recv, msg));
                }
                for (probe, len) in outcome.sample_pongs {
                    self.run_app_hook(node, now, AppHook::Pong(probe, len));
                }
                schedule_kick(node, &mut self.nodes[node], &mut self.queue, now);
            }
            Ev::Tick => {
                // SimTime counts picoseconds; the engine clock is ns.
                let now_ns = now.0 / 1_000;
                for i in 0..self.nodes.len() {
                    let _ = self.nodes[i].engine.progress(now_ns);
                    if self.nodes[i].engine.has_tx_work() {
                        schedule_kick(i, &mut self.nodes[i], &mut self.queue, now);
                    }
                }
                let p = self.faults.expect("ticks only run with a fault plan");
                let next = now + p.tick;
                if next <= p.until {
                    self.queue.push(next, Ev::Tick);
                }
            }
        }
    }

    fn launch(&mut self, node: usize, rail: usize, d: nmad_core::TxDecision, now: SimTime) {
        let nic = self.nodes[node].rails[rail].clone();
        let host = self.nodes[node].host.clone();
        let mut cpu_cost = nic.tx_overhead;
        if d.copied_bytes > 0 {
            cpu_cost += host.memcpy_time(d.copied_bytes);
        }
        let wire_len = d.frame.wire_len();
        match d.mode {
            TxMode::Pio => {
                cpu_cost += nic.pio_injection_time(wire_len);
                let g = self.nodes[node].cpu.acquire(now, cpu_cost);
                if let Some(tl) = &mut self.timeline {
                    tl.record(
                        format!("n{node}.cpu"),
                        g.start,
                        g.end,
                        format!("pio {wire_len}B"),
                    );
                    tl.record(
                        format!("n{node}.rail{rail}"),
                        g.start,
                        g.end,
                        format!("pio {wire_len}B"),
                    );
                }
                self.queue.push(
                    g.end,
                    Ev::PioDone {
                        node,
                        rail,
                        token: d.token,
                    },
                );
                self.queue.push(
                    g.end + nic.wire_latency,
                    Ev::Arrive {
                        node: 1 - node,
                        rail,
                        frame: d.frame,
                    },
                );
            }
            _ => {
                cpu_cost += nic.dma_setup;
                let g = self.nodes[node].cpu.acquire(now, cpu_cost);
                if let Some(tl) = &mut self.timeline {
                    tl.record(
                        format!("n{node}.cpu"),
                        g.start,
                        g.end,
                        format!("dma setup {wire_len}B"),
                    );
                }
                self.queue.push(
                    g.end,
                    Ev::DmaStart {
                        node,
                        rail,
                        token: d.token,
                        frame: d.frame,
                    },
                );
            }
        }
        if let Some(e) = self.sim_event(now, EventKind::SimCpu, node) {
            self.recorder.record(
                e.rail(rail)
                    .size(wire_len as u64)
                    .aux(d.copied_bytes as u64),
            );
        }
    }

    fn schedule_bus_check(&mut self, node: usize, now: SimTime) {
        if let Some((_, t, ep)) = self.nodes[node].bus.next_completion() {
            self.queue
                .push(t.max(now), Ev::BusCheck { node, epoch: ep });
        }
    }

    fn fire_send_complete(&mut self, node: usize, now: SimTime, send: SendId) {
        if let Some(e) = self.sim_event(now, EventKind::SimApp, node) {
            self.recorder.record(e.seq(send.0));
        }
        self.run_app_hook(node, now, AppHook::Send(send));
    }

    fn run_app_hook(&mut self, node: usize, now: SimTime, hook: AppHook) {
        if node == 0 {
            let mut app = self.app0.take().expect("app0 present");
            {
                let mut api = NodeApi {
                    idx: 0,
                    node: &mut self.nodes[0],
                    queue: &mut self.queue,
                    now,
                };
                hook.run(&mut app, &mut api);
            }
            self.app0 = Some(app);
        } else {
            let mut app = self.app1.take().expect("app1 present");
            {
                let mut api = NodeApi {
                    idx: 1,
                    node: &mut self.nodes[1],
                    queue: &mut self.queue,
                    now,
                };
                hook.run(&mut app, &mut api);
            }
            self.app1 = Some(app);
        }
    }
}

enum AppHook {
    Start,
    Recv(RecvId, MessageAssembly),
    Send(SendId),
    Pong(u64, usize),
}

impl AppHook {
    fn run<T: AppLogic>(self, app: &mut T, api: &mut NodeApi<'_>) {
        match self {
            AppHook::Start => app.on_start(api),
            AppHook::Recv(r, m) => app.on_recv_complete(r, m, api),
            AppHook::Send(s) => app.on_send_complete(s, api),
            AppHook::Pong(p, l) => app.on_sample_pong(p, l, api),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;

    /// Sender app: one message, records completion time.
    struct OneShotSender {
        conn: ConnId,
        payloads: Vec<Bytes>,
        send_done_at: Option<SimTime>,
    }
    impl AppLogic for OneShotSender {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.submit_send(self.conn, self.payloads.clone());
        }
        fn on_send_complete(&mut self, _send: SendId, api: &mut NodeApi<'_>) {
            self.send_done_at = Some(api.now());
        }
    }

    /// Receiver app: one recv, records delivery time and content.
    struct OneShotReceiver {
        conn: ConnId,
        got: Option<(SimTime, Vec<Bytes>)>,
    }
    impl AppLogic for OneShotReceiver {
        fn on_start(&mut self, api: &mut NodeApi<'_>) {
            api.post_recv(self.conn);
        }
        fn on_recv_complete(&mut self, _r: RecvId, msg: MessageAssembly, api: &mut NodeApi<'_>) {
            self.got = Some((api.now(), msg.segments));
        }
    }

    fn transfer(strategy: StrategyKind, payloads: Vec<Bytes>) -> (SimTime, SimWorldT) {
        let p = platform::paper_platform();
        let mut w = SimWorld::new(
            &p,
            EngineConfig::with_strategy(strategy),
            OneShotSender {
                conn: 0,
                payloads,
                send_done_at: None,
            },
            OneShotReceiver { conn: 0, got: None },
        );
        w.open_conn();
        w.run(1_000_000);
        let t = w.app1().got.as_ref().expect("delivered").0;
        (t, w)
    }

    type SimWorldT = SimWorld<OneShotSender, OneShotReceiver>;

    #[test]
    fn small_message_latency_near_quadrics_floor() {
        // The adaptive strategy routes a tiny message over Quadrics; the
        // one-way time must land near the 1.7 us hardware floor plus the
        // engine's scheduling/poll costs.
        let (t, w) = transfer(StrategyKind::AdaptiveSplit, vec![Bytes::from(vec![0u8; 4])]);
        let us = t.as_us_f64();
        assert!(
            (1.7..3.2).contains(&us),
            "4B transfer took {us} us, expected ~1.7-3.2 us"
        );
        // It must actually have used Quadrics (rail 1).
        assert_eq!(w.node(0).engine.stats().rails[1].packets, 1);
        assert_eq!(w.node(0).engine.stats().rails[0].packets, 0);
    }

    #[test]
    fn large_message_bandwidth_near_rail_sum() {
        let size = 8 << 20;
        let (t, w) = transfer(
            StrategyKind::AdaptiveSplit,
            vec![Bytes::from(vec![7u8; size])],
        );
        let bw = size as f64 / t.as_secs_f64() / 1e6;
        // Hetero split over both rails under the 1950 MB/s bus: expect
        // ~1800-1950 MB/s (beats both single rails and the iso bound).
        assert!(
            (1750.0..1960.0).contains(&bw),
            "8MB adaptive-split bandwidth {bw} MB/s"
        );
        let s = w.node(0).engine.stats();
        assert!(s.rails[0].payload_bytes > 0 && s.rails[1].payload_bytes > 0);
    }

    #[test]
    fn single_rail_bandwidth_matches_calibration() {
        let size = 8 << 20;
        let (t, _) = transfer(
            StrategyKind::SingleRail(0),
            vec![Bytes::from(vec![7u8; size])],
        );
        let bw = size as f64 / t.as_secs_f64() / 1e6;
        assert!((bw - 1200.0).abs() < 40.0, "Myri-only bandwidth {bw}");
        let (t, _) = transfer(
            StrategyKind::SingleRail(1),
            vec![Bytes::from(vec![7u8; size])],
        );
        let bw = size as f64 / t.as_secs_f64() / 1e6;
        assert!((bw - 850.0).abs() < 30.0, "Quadrics-only bandwidth {bw}");
    }

    #[test]
    fn greedy_two_segments_hits_equal_split_plateau() {
        let seg = 4 << 20;
        let (t, w) = transfer(
            StrategyKind::Greedy,
            vec![Bytes::from(vec![1u8; seg]), Bytes::from(vec![2u8; seg])],
        );
        let bw = (2 * seg) as f64 / t.as_secs_f64() / 1e6;
        // Equal split paced by Quadrics: bound 1702, measured 1675 in the
        // paper. Allow the same neighbourhood.
        assert!(
            (1600.0..1710.0).contains(&bw),
            "greedy 2x4MB bandwidth {bw} MB/s"
        );
        let s = w.node(0).engine.stats();
        assert!(s.rails[0].payload_bytes > 0 && s.rails[1].payload_bytes > 0);
    }

    #[test]
    fn payload_integrity_through_split_transfer() {
        let mut rng = nmad_sim::Xoshiro256StarStar::new(42);
        let mut data = vec![0u8; 3_000_000];
        rng.fill_bytes(&mut data);
        let payload = Bytes::from(data.clone());
        let (_, w) = transfer(StrategyKind::AdaptiveSplit, vec![payload]);
        let got = &w.app1().got.as_ref().unwrap().1;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_ref(), data.as_slice());
    }

    #[test]
    fn sender_reports_local_completion() {
        let (_, w) = transfer(StrategyKind::Greedy, vec![Bytes::from(vec![0u8; 1024])]);
        assert!(w.app0().send_done_at.is_some());
        assert!(w.app0().send_done_at.unwrap() <= w.app1().got.as_ref().unwrap().0);
    }

    #[test]
    fn compute_phase_builds_an_aggregation_window() {
        // Submit 6 tiny messages interleaved with CPU computation: the
        // engine cannot transmit while the CPU computes (single core), so
        // the backlog accumulates and the aggregating strategy batches it.
        struct BusySender;
        impl AppLogic for BusySender {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for i in 0..6u8 {
                    api.submit_send(0, vec![Bytes::from(vec![i; 32])]);
                    api.compute(SimDuration::from_us(2));
                }
            }
        }
        struct Sink {
            got: usize,
        }
        impl AppLogic for Sink {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for _ in 0..6 {
                    api.post_recv(0);
                }
            }
            fn on_recv_complete(
                &mut self,
                _r: RecvId,
                _m: MessageAssembly,
                _api: &mut NodeApi<'_>,
            ) {
                self.got += 1;
            }
        }
        let p = platform::paper_platform();
        let mut w = SimWorld::new(
            &p,
            EngineConfig::with_strategy(StrategyKind::AggregateEager),
            BusySender,
            Sink { got: 0 },
        );
        w.open_conn();
        w.run(1_000_000);
        assert_eq!(w.app1().got, 6, "all messages delivered");
        let s = w.node(0).engine.stats();
        // The first message may leave alone (NIC idle at submit time), but
        // the compute phase must force at least one aggregate of the rest.
        assert!(
            s.aggregates_built >= 1,
            "compute phase must build an aggregation window: {s:?}"
        );
        assert!(
            s.total_packets() < 6,
            "fewer physical packets than messages: {}",
            s.total_packets()
        );
    }

    #[test]
    fn timeline_shows_pio_serialization_and_dma_overlap() {
        fn run(total: usize) -> crate::timeline::Timeline {
            let p = platform::paper_platform();
            let seg = total / 2;
            let mut w = SimWorld::new(
                &p,
                EngineConfig::with_strategy(StrategyKind::Greedy),
                OneShotSender {
                    conn: 0,
                    payloads: vec![Bytes::from(vec![1u8; seg]), Bytes::from(vec![2u8; seg])],
                    send_done_at: None,
                },
                OneShotReceiver { conn: 0, got: None },
            );
            w.open_conn();
            w.enable_timeline();
            w.run(1_000_000);
            w.timeline.take().unwrap()
        }

        fn overlap(tl: &crate::timeline::Timeline, a: &str, b: &str) -> bool {
            tl.lane(a).any(|x| {
                tl.lane(b)
                    .any(|y| x.start < y.end && y.start < x.end && x.end > x.start)
            })
        }

        // PIO case (2 x 2 KiB): rail lanes are CPU lanes, so the two
        // injections must NOT overlap in time.
        let tl = run(4 << 10);
        assert!(
            !overlap(&tl, "n0.rail0", "n0.rail1"),
            "PIO injections must serialize:
{}",
            tl.render(60)
        );

        // DMA case (2 x 512 KiB): the two rail transfers must overlap.
        let tl = run(1 << 20);
        assert!(
            overlap(&tl, "n0.rail0", "n0.rail1"),
            "DMA transfers must overlap:
{}",
            tl.render(60)
        );
    }

    #[test]
    fn bandwidth_reconverges_to_surviving_rail_after_failure() {
        // Rail 0 (Myri, the fast one) dies 100 us into a 10 x 1 MiB acked
        // pipeline and stays dead past the last delivery. The engine must
        // blame it, fail over, and the steady-state bandwidth of the tail
        // of the pipeline must re-converge to the surviving Quadrics
        // rail's plateau (~850 MB/s, calibrated by
        // `single_rail_bandwidth_matches_calibration`) within 10%. Once
        // the link heals, probes must reinstate the rail through the full
        // Up -> Suspect -> Down -> Probing -> Up cycle.
        use nmad_core::RailState;

        const N: usize = 10;
        const SIZE: usize = 1 << 20;

        struct PipelineSender;
        impl AppLogic for PipelineSender {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for i in 0..N {
                    api.submit_send(0, vec![Bytes::from(vec![i as u8; SIZE])]);
                }
            }
        }
        struct PipelineReceiver {
            delivered_at: Vec<SimTime>,
        }
        impl AppLogic for PipelineReceiver {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for _ in 0..N {
                    api.post_recv(0);
                }
            }
            fn on_recv_complete(&mut self, _r: RecvId, _m: MessageAssembly, api: &mut NodeApi<'_>) {
                self.delivered_at.push(api.now());
            }
        }

        let p = platform::paper_platform();
        let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
        cfg.acked = true;
        // Timers scaled to simulated microseconds.
        cfg.health.initial_rto_ns = 300_000;
        cfg.health.min_rto_ns = 100_000;
        cfg.health.max_rto_ns = 5_000_000;
        cfg.health.probe_interval_ns = 500_000;
        cfg.health.probe_timeout_ns = 300_000;
        let mut w = SimWorld::new(
            &p,
            cfg,
            PipelineSender,
            PipelineReceiver {
                delivered_at: Vec::new(),
            },
        );
        w.open_conn();
        w.enable_faults(FaultPlan {
            rail: 0,
            down_at: SimTime::from_us(100),
            up_at: SimTime::from_us(25_000),
            tick: SimDuration::from_us(50),
            until: SimTime::from_us(35_000),
            drift: None,
        });
        w.run(5_000_000);

        let times = &w.app1().delivered_at;
        assert_eq!(times.len(), N, "all messages must survive the outage");
        assert!(w.packets_lost > 0, "the outage must actually bite");
        let s0 = w.node(0).engine.stats().clone();
        assert!(s0.retransmits > 0, "recovery must use retransmission");
        assert!(s0.rails[0].timeouts > 0, "rail 0 must take the blame");

        // Steady state: after failover settles (~1.4 ms) the pipeline
        // streams back-to-back over the surviving rail. The messages
        // caught mid-flight by the outage are retransmitted and complete
        // last — partly from bytes that crossed before the failure — so
        // the bandwidth window covers only the cleanly-streamed ones.
        let steady = times[N - 4].since(times[0]).as_secs_f64();
        let bw = (N - 4) as f64 * SIZE as f64 / steady / 1e6;
        assert!(
            (bw - 850.0).abs() <= 85.0,
            "post-failover bandwidth {bw:.0} MB/s not within 10% of the \
             surviving rail's 850 MB/s plateau"
        );

        // The link healed at 25 ms; ticks ran to 35 ms, so probes must
        // have walked rail 0 through the full recovery cycle.
        let health0 = w.node(0).engine.health().rail(nmad_model::RailId(0));
        assert_eq!(health0.state(), RailState::Up, "rail 0 reinstated");
        let hist = health0.history();
        let cycle = [
            RailState::Up,
            RailState::Suspect,
            RailState::Down,
            RailState::Probing,
            RailState::Up,
        ];
        let mut it = hist.iter();
        assert!(
            cycle.iter().all(|n| it.any(|h| h == n)),
            "rail 0 history must contain the full recovery cycle: {hist:?}"
        );
        assert!(
            s0.rails[0].probes_sent > 0,
            "reinstatement comes from probes"
        );
    }

    #[test]
    fn calibration_tracks_bandwidth_drift_and_is_deterministic() {
        // Rail 0 (Myri) loses half its bandwidth 2 ms into a 24 x 1 MiB
        // pipeline. With online calibration enabled, the sender's
        // completion-path samples must rebuild the split tables and move
        // the byte share away from the degraded rail; under a fixed sim
        // seed the whole trajectory (history and final tables) must be
        // bit-identical across runs.
        const N: usize = 24;
        const SIZE: usize = 1 << 20;

        struct DriftSender;
        impl AppLogic for DriftSender {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for i in 0..N {
                    api.submit_send(0, vec![Bytes::from(vec![i as u8; SIZE])]);
                }
            }
        }
        struct DriftReceiver {
            delivered: usize,
        }
        impl AppLogic for DriftReceiver {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                for _ in 0..N {
                    api.post_recv(0);
                }
            }
            fn on_recv_complete(
                &mut self,
                _r: RecvId,
                _m: MessageAssembly,
                _api: &mut NodeApi<'_>,
            ) {
                self.delivered += 1;
            }
        }

        let run = || {
            let p = platform::paper_platform();
            let mut cfg = EngineConfig::with_strategy(StrategyKind::AdaptiveSplit);
            cfg.calibration.enabled = true;
            cfg.calibration.rebuild_every = 8;
            cfg.calibration.min_samples = 8;
            let mut w = SimWorld::new(&p, cfg, DriftSender, DriftReceiver { delivered: 0 });
            w.open_conn();
            // Recording forwards virtual time into the engines, giving the
            // calibrator exact (not tick-quantized) injection timings.
            w.enable_recording(8192);
            w.enable_faults(FaultPlan::drift_only(
                BandwidthDrift {
                    rail: 0,
                    from: SimTime::from_us(2_000),
                    to: SimTime::from_us(1_000_000),
                    factor: 0.5,
                },
                SimDuration::from_us(50),
                SimTime::from_us(40_000),
            ));
            w.run(5_000_000);
            assert_eq!(w.app1().delivered, N, "pipeline must complete");
            w
        };

        let w = run();
        let cal = w.node(0).engine.calibrator().expect("calibration enabled");
        let hist = cal.history();
        assert!(!hist.is_empty(), "the pipeline must trigger rebuilds");
        let last = hist.last().unwrap();
        // Seed tables give Myri ~57-60% of a 1 MiB split; at half
        // bandwidth its equal-time share drops near ~43%. The calibrated
        // ratio must have left the seed band and moved the right way.
        assert!(
            last.permille[0] < 500,
            "degraded rail share must fall below half: {:?}",
            hist.iter().map(|s| s.permille.clone()).collect::<Vec<_>>()
        );
        assert!(
            last.permille[0] > 250,
            "share must stay in a sane band: {:?}",
            last.permille
        );
        // The rebuilds are visible as obs events (old -> new permille).
        let calib_events: Vec<Event> = w
            .merged_events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Calibrate)
            .collect();
        assert!(!calib_events.is_empty(), "calibrate events recorded");

        // Determinism: identical runs converge to identical tables.
        let w2 = run();
        let cal2 = w2.node(0).engine.calibrator().expect("calibration enabled");
        assert_eq!(cal.history().len(), cal2.history().len());
        for (a, b) in cal.history().iter().zip(cal2.history()) {
            assert_eq!(a.permille, b.permille);
            assert_eq!(a.samples, b.samples);
        }
        for (ta, tb) in w
            .node(0)
            .engine
            .tables()
            .iter()
            .zip(w2.node(0).engine.tables())
        {
            assert_eq!(ta.sizes(), tb.sizes());
            for &s in ta.sizes() {
                assert_eq!(
                    ta.time_for(s).to_bits(),
                    tb.time_for(s).to_bits(),
                    "tables must be bit-identical at size {s}"
                );
            }
        }
    }

    #[test]
    fn world_is_deterministic() {
        let run = || {
            let (t, w) = transfer(
                StrategyKind::AdaptiveSplit,
                vec![Bytes::from(vec![1u8; 777_777])],
            );
            (t, w.events_processed())
        };
        assert_eq!(run(), run());
    }
}
