//! Activity timelines: what each CPU, rail and bus did, when.
//!
//! The paper's whole argument is about *overlap* — PIO that cannot
//! overlap, DMA that can, rails working in parallel. A [`Timeline`]
//! records labelled intervals per lane and renders them as an ASCII Gantt
//! chart, which makes the §3.2 serialization and the §3.4 split overlap
//! directly visible (see the `timeline` example).

use std::fmt::Write as _;

use nmad_sim::SimTime;

/// One recorded activity interval.
#[derive(Clone, Debug)]
pub struct Interval {
    /// Lane name, e.g. `"n0.cpu"`, `"n0.rail1"`.
    pub lane: String,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Short label, e.g. `"pio 2068B"`.
    pub label: String,
}

/// A collection of intervals grouped by lane.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    intervals: Vec<Interval>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interval.
    pub fn record(
        &mut self,
        lane: impl Into<String>,
        start: SimTime,
        end: SimTime,
        label: impl Into<String>,
    ) {
        debug_assert!(start <= end);
        self.intervals.push(Interval {
            lane: lane.into(),
            start,
            end,
            label: label.into(),
        });
    }

    /// All recorded intervals, in recording order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Intervals on one lane.
    pub fn lane<'a>(&'a self, lane: &'a str) -> impl Iterator<Item = &'a Interval> + 'a {
        self.intervals.iter().filter(move |i| i.lane == lane)
    }

    /// Busy time summed over a lane.
    pub fn lane_busy(&self, lane: &str) -> f64 {
        self.lane(lane)
            .map(|i| i.end.as_us_f64() - i.start.as_us_f64())
            .sum()
    }

    /// Distinct lane names, in first-appearance order.
    pub fn lanes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for i in &self.intervals {
            if !out.contains(&i.lane) {
                out.push(i.lane.clone());
            }
        }
        out
    }

    /// End of the last interval.
    pub fn span_end(&self) -> SimTime {
        self.intervals
            .iter()
            .map(|i| i.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Render an ASCII Gantt chart, `width` characters wide.
    ///
    /// ```text
    /// n0.cpu   |██▓▓░---------------| 3.1us busy
    /// n0.rail0 |---████████---------| 4.8us busy
    /// ```
    pub fn render(&self, width: usize) -> String {
        let width = width.max(10);
        let total = self.span_end().as_us_f64();
        let mut out = String::new();
        if total <= 0.0 {
            return "(empty timeline)\n".into();
        }
        let lanes = self.lanes();
        let name_w = lanes.iter().map(String::len).max().unwrap_or(4).max(4);
        let _ = writeln!(out, "{:>name_w$} 0 {:-^width$} {:.2}us", "", "time", total);
        for lane in &lanes {
            let mut row = vec!['-'; width];
            for iv in self.lane(lane) {
                let a = ((iv.start.as_us_f64() / total) * width as f64).floor() as usize;
                let b = ((iv.end.as_us_f64() / total) * width as f64).ceil() as usize;
                for c in row
                    .iter_mut()
                    .take(b.min(width))
                    .skip(a.min(width.saturating_sub(1)))
                {
                    *c = '#';
                }
            }
            let bar: String = row.into_iter().collect();
            let _ = writeln!(
                out,
                "{lane:>name_w$} |{bar}| {:.2}us busy",
                self.lane_busy(lane)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn records_and_sums() {
        let mut tl = Timeline::new();
        tl.record("cpu", t(0), t(2), "a");
        tl.record("cpu", t(5), t(6), "b");
        tl.record("rail0", t(1), t(4), "tx");
        assert_eq!(tl.lanes(), vec!["cpu".to_string(), "rail0".to_string()]);
        assert!((tl.lane_busy("cpu") - 3.0).abs() < 1e-9);
        assert_eq!(tl.span_end(), t(6));
        assert_eq!(tl.lane("rail0").count(), 1);
    }

    #[test]
    fn render_marks_busy_regions() {
        let mut tl = Timeline::new();
        tl.record("cpu", t(0), t(5), "first half");
        let s = tl.render(20);
        assert!(s.contains("cpu"));
        // First half of a 0..5us lane spanning 0..5us total: all busy.
        let bar: String = s
            .lines()
            .find(|l| l.contains("cpu"))
            .unwrap()
            .chars()
            .skip_while(|&c| c != '|')
            .take_while(|&c| c != ' ')
            .collect();
        assert!(bar.contains('#'));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::new();
        assert!(tl.render(40).contains("empty"));
        assert_eq!(tl.span_end(), SimTime::ZERO);
    }

    #[test]
    fn zero_length_intervals_are_fine() {
        let mut tl = Timeline::new();
        let now = SimTime::from_us(1);
        tl.record("x", now, now + SimDuration::ZERO, "instant");
        assert_eq!(tl.lane_busy("x"), 0.0);
        let _ = tl.render(30);
    }
}
