//! The paper's benchmark (§3.1): "a regular ping-pong program where the
//! send (resp. recv) sequence is a series of non-blocking send (resp.
//! non-blocking recv) operations."
//!
//! A message of `total_size` bytes is built from `segments` equal segments
//! (multi-segment messages model non-contiguous data or bursts of
//! non-blocking sends). The pong side answers with an identical shape.
//! One-way time is `min(RTT) / 2` after warmup, matching the usual
//! methodology of the plots.

use bytes::Bytes;
use nmad_core::request::RecvId;
use nmad_core::{EngineConfig, EngineStats, PerfTable};
use nmad_model::Platform;
use nmad_sim::{SimDuration, SimTime};
use nmad_wire::reassembly::MessageAssembly;
use nmad_wire::ConnId;

use crate::world::{AppLogic, NodeApi, SimWorld};

/// Ping-pong specification.
#[derive(Clone)]
pub struct PingPongSpec {
    /// Node hardware (both ends identical, like the paper's testbed).
    pub platform: Platform,
    /// Engine configuration (strategy + thresholds).
    pub config: EngineConfig,
    /// Total message size in bytes (sum over segments).
    pub total_size: usize,
    /// Number of equal segments the message is built from.
    pub segments: usize,
    /// Iterations discarded before timing.
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
    /// Sampled per-rail tables to install before running (None keeps the
    /// engines' analytic seed tables).
    pub tables: Option<Vec<PerfTable>>,
}

impl PingPongSpec {
    /// A spec with the defaults used throughout the figure harness:
    /// 1 warmup + 3 timed iterations (the simulation is deterministic, so
    /// few iterations suffice; warmup flushes connection setup effects).
    pub fn new(platform: Platform, config: EngineConfig, total_size: usize) -> Self {
        PingPongSpec {
            platform,
            config,
            total_size,
            segments: 1,
            warmup: 1,
            iters: 3,
            tables: None,
        }
    }

    /// Set the segment count.
    pub fn with_segments(mut self, segments: usize) -> Self {
        self.segments = segments;
        self
    }

    /// Install sampled tables.
    pub fn with_tables(mut self, tables: Vec<PerfTable>) -> Self {
        self.tables = Some(tables);
        self
    }

    fn payloads(&self) -> Vec<Bytes> {
        assert!(self.segments >= 1, "need at least one segment");
        let base = self.total_size / self.segments;
        let rem = self.total_size % self.segments;
        (0..self.segments)
            .map(|i| {
                let len = base + usize::from(i < rem);
                Bytes::from(vec![(i & 0xFF) as u8; len])
            })
            .collect()
    }
}

/// Ping-pong outcome.
#[derive(Clone, Debug)]
pub struct PingPongResult {
    /// All round-trip times, including warmup iterations.
    pub rtts: Vec<SimDuration>,
    /// Minimum post-warmup round trip.
    pub min_rtt: SimDuration,
    /// `min_rtt / 2` — the "transfer time" of the paper's latency plots.
    pub one_way: SimDuration,
    /// `total_size / one_way` in decimal MB/s — the bandwidth plots.
    pub bandwidth_mbs: f64,
    /// Sender-side engine counters (strategy behaviour assertions).
    pub sender_stats: EngineStats,
    /// Total simulated events (diagnostics).
    pub events: u64,
}

struct PingApp {
    conn: ConnId,
    payloads: Vec<Bytes>,
    rounds: usize,
    done: usize,
    iter_start: SimTime,
    rtts: Vec<SimDuration>,
}

impl AppLogic for PingApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.post_recv(self.conn);
        self.iter_start = api.now();
        api.submit_send(self.conn, self.payloads.clone());
    }

    fn on_recv_complete(&mut self, _r: RecvId, msg: MessageAssembly, api: &mut NodeApi<'_>) {
        debug_assert_eq!(
            msg.total_len(),
            self.payloads.iter().map(Bytes::len).sum::<usize>()
        );
        self.rtts.push(api.now().since(self.iter_start));
        self.done += 1;
        if self.done < self.rounds {
            api.post_recv(self.conn);
            self.iter_start = api.now();
            api.submit_send(self.conn, self.payloads.clone());
        }
    }
}

struct PongApp {
    conn: ConnId,
    payloads: Vec<Bytes>,
}

impl AppLogic for PongApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.post_recv(self.conn);
    }

    fn on_recv_complete(&mut self, _r: RecvId, _msg: MessageAssembly, api: &mut NodeApi<'_>) {
        api.post_recv(self.conn);
        api.submit_send(self.conn, self.payloads.clone());
    }
}

/// Run one ping-pong experiment.
pub fn run_pingpong(spec: &PingPongSpec) -> PingPongResult {
    let payloads = spec.payloads();
    let rounds = spec.warmup + spec.iters;
    let ping = PingApp {
        conn: 0,
        payloads: payloads.clone(),
        rounds,
        done: 0,
        iter_start: SimTime::ZERO,
        rtts: Vec::with_capacity(rounds),
    };
    let pong = PongApp { conn: 0, payloads };
    let mut world = SimWorld::new(&spec.platform, spec.config.clone(), ping, pong);
    world.open_conn();
    if let Some(tables) = &spec.tables {
        world.set_tables(tables.clone());
    }
    // Generous cap: rendezvous traffic is a handful of events per chunk.
    world.run(20_000_000);

    let rtts = world.app0().rtts.clone();
    assert_eq!(
        rtts.len(),
        rounds,
        "ping-pong stalled: completed {} of {rounds} rounds at {}",
        rtts.len(),
        world.now()
    );
    let min_rtt = rtts[spec.warmup..]
        .iter()
        .copied()
        .min()
        .expect("at least one timed iteration");
    let one_way = min_rtt / 2;
    let bandwidth_mbs = spec.total_size as f64 / one_way.as_secs_f64() / 1e6;
    PingPongResult {
        rtts,
        min_rtt,
        one_way,
        bandwidth_mbs,
        sender_stats: world.node(0).engine.stats().clone(),
        events: world.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;

    fn spec(kind: StrategyKind, size: usize, segs: usize) -> PingPongSpec {
        PingPongSpec::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(kind),
            size,
        )
        .with_segments(segs)
    }

    #[test]
    fn myri_latency_anchor() {
        let s = PingPongSpec::new(
            platform::single_rail_platform(platform::myri_10g()),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
            4,
        );
        let r = run_pingpong(&s);
        let us = r.one_way.as_us_f64();
        assert!((2.6..3.4).contains(&us), "Myri 4B one-way {us} us (~2.8)");
    }

    #[test]
    fn quadrics_latency_anchor() {
        let s = PingPongSpec::new(
            platform::single_rail_platform(platform::quadrics_qm500()),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
            4,
        );
        let r = run_pingpong(&s);
        let us = r.one_way.as_us_f64();
        assert!(
            (1.6..2.3).contains(&us),
            "Quadrics 4B one-way {us} us (~1.7)"
        );
    }

    #[test]
    fn bandwidth_anchors() {
        let r = run_pingpong(&spec(StrategyKind::SingleRail(0), 8 << 20, 1));
        assert!(
            (r.bandwidth_mbs - 1200.0).abs() < 40.0,
            "Myri 8MB {} MB/s",
            r.bandwidth_mbs
        );
        let r = run_pingpong(&spec(StrategyKind::SingleRail(1), 8 << 20, 1));
        assert!(
            (r.bandwidth_mbs - 850.0).abs() < 30.0,
            "Quadrics 8MB {} MB/s",
            r.bandwidth_mbs
        );
    }

    #[test]
    fn multi_segment_small_messages_cost_more_without_aggregation() {
        let plain2 = run_pingpong(&spec(StrategyKind::SingleRail(0), 1024, 2));
        let plain1 = run_pingpong(&spec(StrategyKind::SingleRail(0), 1024, 1));
        assert!(
            plain2.one_way > plain1.one_way,
            "2 segments must be slower than 1: {:?} vs {:?}",
            plain2.one_way,
            plain1.one_way
        );
        // Aggregation closes most of the gap (Fig 2a).
        let agg2 = run_pingpong(&spec(StrategyKind::SingleRailAggregating(0), 1024, 2));
        assert!(agg2.one_way < plain2.one_way);
        let gap_plain = plain2.one_way.as_us_f64() - plain1.one_way.as_us_f64();
        let gap_agg = agg2.one_way.as_us_f64() - plain1.one_way.as_us_f64();
        assert!(
            gap_agg < gap_plain / 2.0,
            "aggregation must close most of the multi-segment gap: {gap_agg} vs {gap_plain}"
        );
        assert!(agg2.sender_stats.aggregates_built > 0);
    }

    #[test]
    fn rtt_stable_across_iterations() {
        let r = run_pingpong(&spec(StrategyKind::Greedy, 4096, 1));
        // Deterministic sim: post-warmup iterations must be identical.
        let timed = &r.rtts[1..];
        assert!(timed.windows(2).all(|w| w[0] == w[1]), "rtts: {:?}", r.rtts);
    }

    #[test]
    fn payload_shapes() {
        let s = spec(StrategyKind::Greedy, 10, 4);
        let p = s.payloads();
        let lens: Vec<usize> = p.iter().map(Bytes::len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        assert_eq!(lens.iter().sum::<usize>(), 10);
    }
}
