//! Size sweeps: the latency/bandwidth series behind every figure.

use nmad_core::{EngineConfig, PerfTable};
use nmad_model::Platform;
use serde::{ser, Serialize, Value};

use crate::pingpong::{run_pingpong, PingPongSpec};

/// One measured point of a series.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Total message size in bytes.
    pub size: u64,
    /// One-way transfer time in microseconds.
    pub one_way_us: f64,
    /// Effective bandwidth in decimal MB/s.
    pub bandwidth_mbs: f64,
}

impl Serialize for SeriesPoint {
    fn to_value(&self) -> Value {
        ser::object([
            ("size", ser::v(&self.size)),
            ("one_way_us", ser::v(&self.one_way_us)),
            ("bandwidth_mbs", ser::v(&self.bandwidth_mbs)),
        ])
    }
}

/// A labelled series (one curve of a figure).
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Curve label as it appears in the figure legend.
    pub label: String,
    /// Measured points, in size order.
    pub points: Vec<SeriesPoint>,
}

impl Serialize for Sweep {
    fn to_value(&self) -> Value {
        ser::object([
            ("label", ser::v(&self.label)),
            ("points", ser::v(&self.points)),
        ])
    }
}

impl Sweep {
    /// Run a ping-pong at every size and collect the series.
    pub fn run(
        label: impl Into<String>,
        platform: &Platform,
        config: &EngineConfig,
        sizes: &[u64],
        segments: usize,
        tables: Option<&[PerfTable]>,
    ) -> Sweep {
        let points = sizes
            .iter()
            .map(|&size| {
                let mut spec = PingPongSpec::new(platform.clone(), config.clone(), size as usize)
                    .with_segments(segments);
                if let Some(t) = tables {
                    spec = spec.with_tables(t.to_vec());
                }
                let r = run_pingpong(&spec);
                SeriesPoint {
                    size,
                    one_way_us: r.one_way.as_us_f64(),
                    bandwidth_mbs: r.bandwidth_mbs,
                }
            })
            .collect();
        Sweep {
            label: label.into(),
            points,
        }
    }

    /// Point at exactly `size`, if present.
    pub fn at(&self, size: u64) -> Option<&SeriesPoint> {
        self.points.iter().find(|p| p.size == size)
    }

    /// Maximum bandwidth over the series (the plateau of the plots).
    pub fn peak_bandwidth(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.bandwidth_mbs)
            .fold(0.0, f64::max)
    }
}

/// The latency-plot abscissa of Figures 2–6: powers of two, 4 B – 32 KiB.
pub fn latency_sizes() -> Vec<u64> {
    sizes_pow2(4, 32 << 10)
}

/// The bandwidth-plot abscissa of Figures 2–5 and 7: 32 KiB – 8 MiB.
pub fn bandwidth_sizes() -> Vec<u64> {
    sizes_pow2(32 << 10, 8 << 20)
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn sizes_pow2(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo > 0 && lo <= hi);
    let mut v = Vec::new();
    let mut s = lo;
    while s <= hi {
        v.push(s);
        s *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;

    #[test]
    fn size_ladders_match_figures() {
        let lat = latency_sizes();
        assert_eq!(lat.first(), Some(&4));
        assert_eq!(lat.last(), Some(&(32 << 10)));
        let bw = bandwidth_sizes();
        assert_eq!(bw.first(), Some(&(32 << 10)));
        assert_eq!(bw.last(), Some(&(8 << 20)));
    }

    #[test]
    fn sweep_is_monotone_in_time() {
        let sweep = Sweep::run(
            "test",
            &platform::single_rail_platform(platform::quadrics_qm500()),
            &EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
            &[64, 1024, 16 << 10, 256 << 10],
            1,
            None,
        );
        assert_eq!(sweep.points.len(), 4);
        for w in sweep.points.windows(2) {
            assert!(
                w[1].one_way_us > w[0].one_way_us,
                "transfer time must grow with size: {w:?}"
            );
        }
        assert!(sweep.at(1024).is_some());
        assert!(sweep.at(999).is_none());
        assert!(sweep.peak_bandwidth() > 0.0);
    }
}
