//! # nmad-transport-mem — the engine on real threads
//!
//! The simulator proves the *timing* claims; this crate proves the engine
//! is a real communication library: two endpoints in one process, each
//! driven by its own progress thread, exchanging fully encoded wire
//! packets over per-rail channels. The same [`Engine`] code runs here as
//! under the simulator — only the driver side differs:
//!
//! * each rail is a [`crossbeam_channel`] pair, optionally rate-shaped to
//!   the rail's modelled bandwidth (scaled) so multi-rail balancing is
//!   observable in wall-clock time;
//! * the progress thread plays the role of the NIC-activity loop: it
//!   delivers arrivals, reports transmit completions, and offers idle
//!   rails to the engine;
//! * payload CRCs are enabled, and a deterministic fault injector can
//!   corrupt packets in flight to exercise the detection path.
//!
//! The channels carry [`PacketFrame`]s — refcounted scatter-gather views
//! of the sender's buffers, not flattened copies. Duplication and
//! reordering in the fault injector are refcount bumps; corruption does a
//! copy-on-write of the one affected part only (mutating in place would
//! reach back into the sender's retransmission state).

#![warn(missing_docs)]
// Copy-regression gate: see DESIGN.md "Datapath and copy discipline".
#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam_channel::{unbounded, Receiver, Sender};
use nmad_core::engine::Engine;
use nmad_core::health::RailState;
use nmad_core::request::{RecvId, SendId};
use nmad_core::{
    ChaosState, Completion, EngineConfig, Event, EventKind, FlightRecorder, OutboxReceiver,
    ParallelHub,
};
use nmad_model::{Platform, RailId};
use nmad_sim::Xoshiro256StarStar;
use nmad_wire::reassembly::MessageAssembly;
use nmad_wire::{ConnId, PacketFrame};
use parking_lot::{Condvar, Mutex};

/// A scheduled outage of one rail: every packet on `rail` is dropped
/// from `down_at` until `up_at` (measured from fabric construction).
/// `up_at: None` kills the rail for good.
#[derive(Clone, Copy, Debug)]
pub struct RailOutage {
    /// Rail to kill.
    pub rail: usize,
    /// Outage start, relative to fabric construction.
    pub down_at: Duration,
    /// Outage end; `None` means the rail never comes back.
    pub up_at: Option<Duration>,
}

impl RailOutage {
    fn covers(&self, elapsed: Duration) -> bool {
        elapsed >= self.down_at && self.up_at.map(|u| elapsed < u).unwrap_or(true)
    }
}

/// Deterministic fault injection on the wire.
#[derive(Clone, Debug, Default)]
pub struct FaultSpec {
    /// Probability a packet byte gets flipped in flight.
    pub corrupt_prob: f64,
    /// Probability a packet is silently dropped.
    pub drop_prob: f64,
    /// Probability a packet is delivered twice.
    pub dup_prob: f64,
    /// Probability a packet is held back and delivered after the next
    /// packet on the same rail (pairwise reordering).
    pub reorder_prob: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Scheduled rail outages (kill / flap windows).
    pub outages: Vec<RailOutage>,
}

/// Fabric configuration.
#[derive(Clone)]
pub struct FabricConfig {
    /// Rail layout and relative speeds.
    pub platform: Platform,
    /// Engine configuration (strategy etc.). CRC is forced on.
    pub engine: EngineConfig,
    /// Logical channels to open on both endpoints at construction.
    pub conns: usize,
    /// Rate shaping: seconds of wall time per modelled second. `0.0`
    /// disables shaping (transfers complete as fast as threads run).
    /// With shaping, a rail moves `link_bandwidth * 1/scale` bytes per
    /// wall-clock second — keep messages small when scaling heavily.
    pub time_scale: f64,
    /// Optional fault injection applied to outgoing packets.
    pub faults: Option<FaultSpec>,
    /// Optional live chaos dials (per-rail bandwidth multiplier and
    /// drop boost) a soak driver can turn while the fabric runs. The
    /// caller keeps a clone of the handle; the workers read it
    /// lock-free on every injection.
    pub chaos: Option<ChaosState>,
}

impl FabricConfig {
    /// Unshaped, fault-free fabric on the given platform and strategy.
    pub fn new(platform: Platform, engine: EngineConfig) -> Self {
        FabricConfig {
            platform,
            engine,
            conns: 1,
            time_scale: 0.0,
            faults: None,
            chaos: None,
        }
    }
}

struct Shared {
    engine: Mutex<Engine>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Packets rejected on receive (decode/CRC/reassembly errors).
    rx_errors: AtomicU64,
    /// Packets the fault injector dropped on this endpoint's tx side.
    tx_dropped: AtomicU64,
    /// Wakeup for this endpoint's worker: set under `work` and notified
    /// whenever new work arrives (a submit, a retransmit request, or a
    /// delivery from the peer worker), so the idle loop sleeps on a
    /// condvar instead of spin-polling.
    work: Mutex<bool>,
    work_cv: Condvar,
}

impl Shared {
    /// Wake this endpoint's worker.
    fn kick(&self) {
        *self.work.lock() = true;
        self.work_cv.notify_one();
    }
}

/// Parallel-runtime shared state: the hub plus the counters the serial
/// runtime keeps in [`Shared`].
#[derive(Clone)]
struct ParShared {
    hub: Arc<ParallelHub>,
    /// Packets the fault injector dropped on this endpoint's tx side.
    tx_dropped: Arc<AtomicU64>,
}

/// Which runtime drives an endpoint's engine.
#[derive(Clone)]
enum Fabric {
    /// Single progress thread holding the engine lock across the step.
    Serial(Arc<Shared>),
    /// Sharded pipeline: scheduler + per-rail TX/RX workers; the shaped
    /// wire time is slept out in the TX workers, outside the engine lock.
    Parallel(ParShared),
}

impl Fabric {
    fn engine(&self) -> &Mutex<Engine> {
        match self {
            Fabric::Serial(s) => &s.engine,
            Fabric::Parallel(p) => p.hub.engine(),
        }
    }

    /// Condvar notified when app-visible completions may have landed.
    fn cv(&self) -> &Condvar {
        match self {
            Fabric::Serial(s) => &s.cv,
            Fabric::Parallel(p) => p.hub.app_cv(),
        }
    }
}

/// One endpoint of the in-process fabric.
pub struct Endpoint {
    fabric: Fabric,
    /// Serial: the single progress thread. Parallel: per-rail TX/RX
    /// workers first, the scheduler last (joined in that order).
    workers: Vec<JoinHandle<()>>,
    conns: Vec<ConnId>,
}

/// Handle to a send in flight.
pub struct SendHandle {
    fabric: Fabric,
    id: SendId,
}

/// Handle to a posted receive.
pub struct RecvHandle {
    fabric: Fabric,
    id: RecvId,
}

/// Block on `fabric`'s completion condvar until `done` or `timeout`.
fn wait_on<T>(
    fabric: &Fabric,
    timeout: Duration,
    mut done: impl FnMut(&mut Engine) -> Option<T>,
) -> Option<T> {
    let deadline = Instant::now() + timeout;
    let mut eng = fabric.engine().lock();
    loop {
        if let Some(v) = done(&mut eng) {
            return Some(v);
        }
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        fabric.cv().wait_for(&mut eng, deadline - now);
    }
}

impl SendHandle {
    /// Block until the send completes locally, or `timeout` expires.
    /// Returns true on completion.
    pub fn wait(&self, timeout: Duration) -> bool {
        wait_on(&self.fabric, timeout, |eng| {
            eng.send_complete(self.id).then_some(())
        })
        .is_some()
    }

    /// Block until the *peer confirms delivery* (requires
    /// `EngineConfig::acked` on both endpoints), or `timeout` expires.
    pub fn wait_acked(&self, timeout: Duration) -> bool {
        wait_on(&self.fabric, timeout, |eng| {
            eng.send_acked(self.id).then_some(())
        })
        .is_some()
    }

    /// Manually re-enqueue the message for transmission (acked mode).
    /// Normally unnecessary: the progress thread retransmits
    /// automatically on adaptive timeouts. See
    /// [`nmad_core::Engine::retransmit`].
    pub fn retransmit(&self) -> bool {
        let ok = self.fabric.engine().lock().retransmit(self.id);
        if ok {
            match &self.fabric {
                Fabric::Serial(s) => s.kick(),
                Fabric::Parallel(p) => p.hub.kick_sched(),
            }
        }
        ok
    }
}

impl RecvHandle {
    /// Block until the message arrives, or `timeout` expires.
    pub fn wait(&self, timeout: Duration) -> Option<MessageAssembly> {
        wait_on(&self.fabric, timeout, |eng| eng.try_recv(self.id))
    }
}

impl Endpoint {
    /// Logical channels opened at construction.
    pub fn conns(&self) -> &[ConnId] {
        &self.conns
    }

    /// Submit a non-blocking send.
    pub fn send(&self, conn: ConnId, segments: Vec<Bytes>) -> SendHandle {
        let id = match &self.fabric {
            Fabric::Serial(s) => {
                let id = s.engine.lock().submit_send(conn, segments);
                s.kick();
                id
            }
            // The hub queues without the engine lock and kicks the
            // scheduler itself. Submission only errors after shutdown,
            // and this endpoint owns the hub's lifetime.
            Fabric::Parallel(p) => p
                .hub
                .submit_send(conn, segments)
                .expect("endpoint not shut down"),
        };
        SendHandle {
            fabric: self.fabric.clone(),
            id,
        }
    }

    /// Post a non-blocking receive.
    pub fn recv(&self, conn: ConnId) -> RecvHandle {
        let id = match &self.fabric {
            Fabric::Serial(s) => {
                let id = s.engine.lock().post_recv(conn);
                s.kick();
                id
            }
            Fabric::Parallel(p) => p.hub.post_recv(conn).expect("endpoint not shut down"),
        };
        RecvHandle {
            fabric: self.fabric.clone(),
            id,
        }
    }

    /// Convenience: send and wait.
    pub fn send_blocking(&self, conn: ConnId, segments: Vec<Bytes>, timeout: Duration) -> bool {
        self.send(conn, segments).wait(timeout)
    }

    /// Convenience: receive and wait.
    pub fn recv_blocking(&self, conn: ConnId, timeout: Duration) -> Option<MessageAssembly> {
        self.recv(conn).wait(timeout)
    }

    /// Submit a send under the full overload policy (parallel fabric
    /// only): the submission is refused with
    /// [`nmad_core::SubmitError::WouldBlock`] when the hub's queue
    /// depth, pool watermark, or per-tenant quota is exceeded — see
    /// [`nmad_core::OverloadConfig`]. On the serial fabric there is no
    /// admission boundary and this behaves like [`Endpoint::send`].
    pub fn try_send(
        &self,
        conn: ConnId,
        segments: Vec<Bytes>,
    ) -> Result<SendHandle, nmad_core::SubmitError> {
        match &self.fabric {
            Fabric::Serial(_) => Ok(self.send(conn, segments)),
            Fabric::Parallel(p) => p.hub.try_submit_send(conn, segments).map(|id| SendHandle {
                fabric: self.fabric.clone(),
                id,
            }),
        }
    }

    /// Overload rejection counters (all zero on the serial fabric,
    /// which has no admission boundary).
    pub fn overload_stats(&self) -> nmad_core::OverloadStats {
        match &self.fabric {
            Fabric::Serial(_) => nmad_core::OverloadStats::default(),
            Fabric::Parallel(p) => p.hub.overload_stats(),
        }
    }

    /// Buffer-pool ledger check: outstanding pool buffers not accounted
    /// for by any in-flight transmission. Non-zero means a leak.
    pub fn pool_leaks(&self) -> u64 {
        self.fabric.engine().lock().pool_leaks()
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> nmad_core::EngineStats {
        self.fabric.engine().lock().stats().clone()
    }

    /// Receive-side errors (decode/CRC/reassembly) counted so far.
    pub fn rx_errors(&self) -> u64 {
        match &self.fabric {
            Fabric::Serial(s) => s.rx_errors.load(Ordering::Relaxed),
            Fabric::Parallel(p) => p.hub.rx_errors.load(Ordering::Relaxed),
        }
    }

    /// Packets dropped by the fault injector on this endpoint's tx side.
    pub fn tx_dropped(&self) -> u64 {
        match &self.fabric {
            Fabric::Serial(s) => s.tx_dropped.load(Ordering::Relaxed),
            Fabric::Parallel(p) => p.tx_dropped.load(Ordering::Relaxed),
        }
    }

    /// Current health state of every rail.
    pub fn rail_states(&self) -> Vec<RailState> {
        self.fabric.engine().lock().rail_states()
    }

    /// Full health state history of one rail, oldest first.
    pub fn rail_history(&self, rail: usize) -> Vec<RailState> {
        self.fabric
            .engine()
            .lock()
            .health()
            .rail(RailId(rail))
            .history()
            .to_vec()
    }

    /// Timer and dwell-time telemetry of one rail (SRTT/RTTVAR/RTO and
    /// per-state dwell times, as of the engine clock).
    pub fn rail_telemetry(&self, rail: usize) -> nmad_core::RailTelemetry {
        self.fabric.engine().lock().rail_telemetry(rail)
    }

    /// Snapshot of the recorded flight events, oldest first. Empty unless
    /// the endpoint was built with a nonzero
    /// `EngineConfig::record_capacity`. In parallel mode this merges the
    /// engine ring with the per-worker shards deposited so far.
    pub fn events(&self) -> Vec<nmad_core::Event> {
        match &self.fabric {
            Fabric::Serial(s) => s.engine.lock().recorder().events(),
            Fabric::Parallel(p) => p.hub.merged_events(),
        }
    }

    /// Fold pending recorder events into the telemetry windows and
    /// render the Prometheus text exposition. `None` unless the
    /// endpoint was built with `EngineConfig::telemetry` enabled.
    pub fn telemetry_prometheus(&self) -> Option<String> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        let stats = eng.stats().clone();
        eng.telemetry()
            .map(|agg| nmad_core::obs::to_prometheus(agg, &stats))
    }

    /// The telemetry time series as JSONL, one closed window per line
    /// (oldest first, at most the configured ring depth).
    pub fn telemetry_jsonl(&self) -> Option<String> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.telemetry().map(nmad_core::obs::windows_jsonl)
    }

    /// Snapshot of the most recently closed telemetry window.
    pub fn telemetry_latest(&self) -> Option<nmad_core::Window> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.telemetry().and_then(|agg| agg.latest().cloned())
    }

    /// Watchdog alerts fired so far (empty without a watchdog).
    pub fn alerts(&self) -> Vec<nmad_core::Alert> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.watchdog()
            .map(|d| d.alerts().to_vec())
            .unwrap_or_default()
    }

    /// Machine-readable watchdog verdict. `None` unless the endpoint
    /// was built with `EngineConfig::watchdog` enabled.
    pub fn watchdog_verdict(&self) -> Option<String> {
        let mut eng = self.fabric.engine().lock();
        eng.fold_telemetry();
        eng.watchdog().map(|d| d.verdict_json())
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        match &self.fabric {
            Fabric::Serial(s) => {
                s.shutdown.store(true, Ordering::SeqCst);
                s.kick();
            }
            Fabric::Parallel(p) => p.hub.begin_shutdown(),
        }
        // Parallel: I/O workers were pushed before the scheduler, so they
        // join first and their final completions get drained.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

struct InFlight {
    ready_at: Instant,
    token: nmad_core::driver::TxToken,
    frame: PacketFrame,
}

struct Worker {
    shared: Arc<Shared>,
    /// The peer endpoint's shared state, to wake its worker on delivery.
    peer: Arc<Shared>,
    platform: Platform,
    rx: Vec<Receiver<PacketFrame>>,
    tx: Vec<Sender<PacketFrame>>,
    inflight: Vec<Option<InFlight>>,
    /// Packets held back by the reorder injector, per rail.
    held: Vec<Option<PacketFrame>>,
    /// Fabric construction time: the engine clock and outage windows are
    /// measured from here.
    start: Instant,
    time_scale: f64,
    faults: Option<FaultSpec>,
    chaos: Option<ChaosState>,
    rng: Xoshiro256StarStar,
}

/// Upper bound on an idle wait: keeps shutdown responsive even if a
/// wakeup is lost to a race outside the `work` lock.
const MAX_IDLE_WAIT: Duration = Duration::from_millis(2);
const MIN_IDLE_WAIT: Duration = Duration::from_micros(20);

impl Worker {
    fn run(mut self) {
        loop {
            let progressed = self.step();
            self.shared.cv.notify_all();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if !progressed {
                // Sleep until someone kicks us or the next engine/shaping
                // deadline — no spin-polling.
                let wait = self.idle_wait();
                let mut pending = self.shared.work.lock();
                if !*pending {
                    self.shared.work_cv.wait_for(&mut pending, wait);
                }
                *pending = false;
            }
        }
    }

    /// How long the worker may sleep: bounded by the earliest shaped
    /// transmission completion and the engine's next timer deadline.
    fn idle_wait(&self) -> Duration {
        let now = Instant::now();
        let mut wait = MAX_IDLE_WAIT;
        for f in self.inflight.iter().flatten() {
            wait = wait.min(f.ready_at.saturating_duration_since(now));
        }
        if let Some(deadline_ns) = self.shared.engine.lock().next_deadline_ns() {
            let now_ns = self.start.elapsed().as_nanos() as u64;
            wait = wait.min(Duration::from_nanos(deadline_ns.saturating_sub(now_ns)));
        }
        wait.max(MIN_IDLE_WAIT)
    }

    fn step(&mut self) -> bool {
        let mut progressed = false;
        let now = Instant::now();
        let now_ns = now.saturating_duration_since(self.start).as_nanos() as u64;
        let mut to_deliver: Vec<(usize, PacketFrame)> = Vec::new();
        let mut eng = self.shared.engine.lock();

        // 0. Run the engine's timers: adaptive retransmission, rail
        // health bookkeeping, reinstatement probes.
        let timer_out = eng.progress(now_ns);
        if !timer_out.retransmitted.is_empty() || timer_out.control_enqueued {
            progressed = true;
        }

        // 1. Deliver arrivals. The frame's parts are still the sender's
        // buffers — the engine reads them without another flatten.
        for rail in 0..self.rx.len() {
            while let Ok(frame) = self.rx[rail].try_recv() {
                progressed = true;
                if eng.on_frame(RailId(rail), &frame).is_err() {
                    self.shared.rx_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // 2. Retire transmissions whose shaped duration elapsed.
        for rail in 0..self.inflight.len() {
            let ready = matches!(&self.inflight[rail], Some(f) if f.ready_at <= now);
            if ready {
                let f = self.inflight[rail].take().unwrap();
                progressed = true;
                eng.on_tx_done(RailId(rail), f.token)
                    .expect("token issued by this worker");
                to_deliver.push((rail, f.frame));
            }
        }

        // 3. Offer idle rails to the engine.
        for rail in 0..self.inflight.len() {
            if self.inflight[rail].is_some() {
                continue;
            }
            if let Some(d) = eng
                .next_tx(RailId(rail))
                .expect("engine invariant violated")
            {
                progressed = true;
                let dur = chaos_scaled(
                    shaped_duration(&self.platform, rail, d.frame.wire_len(), self.time_scale),
                    &self.chaos,
                    rail,
                );
                self.inflight[rail] = Some(InFlight {
                    ready_at: now + dur,
                    token: d.token,
                    frame: d.frame,
                });
            }
        }
        drop(eng);
        for (rail, frame) in to_deliver {
            self.deliver(rail, frame);
        }
        progressed
    }

    fn deliver(&mut self, rail: usize, frame: PacketFrame) {
        let boost = chaos_drop_boost(&self.chaos, rail);
        let Some(spec) = &self.faults else {
            // No fault spec: the chaos drop boost still applies (one rng
            // draw, only when a chaos handle is installed and hot).
            if boost > 0.0 && self.rng.chance(boost) {
                self.shared.tx_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            self.push(rail, frame);
            return;
        };
        let elapsed = self.start.elapsed();
        let tx = &self.tx[rail];
        let peer = &self.peer;
        apply_faults(
            spec,
            elapsed,
            rail,
            boost,
            &mut self.rng,
            &mut self.held[rail],
            &self.shared.tx_dropped,
            frame,
            &mut |f| {
                // Peer gone: drop silently (shutdown path).
                let _ = tx.send(f);
                peer.kick();
            },
        );
    }

    /// Hand one wire packet to the peer and wake its worker.
    fn push(&self, rail: usize, frame: PacketFrame) {
        // Peer gone: drop silently (shutdown path).
        let _ = self.tx[rail].send(frame);
        self.peer.kick();
    }
}

/// Wall-clock duration of one shaped injection on `rail`.
fn shaped_duration(platform: &Platform, rail: usize, bytes: usize, time_scale: f64) -> Duration {
    if time_scale <= 0.0 {
        return Duration::ZERO;
    }
    let bw = platform.rails[rail].link_bandwidth;
    let lat = platform.rails[rail].wire_latency.as_secs_f64();
    Duration::from_secs_f64((bytes as f64 / bw + lat) * time_scale)
}

/// Stretch a shaped duration by the chaos bandwidth multiplier: a rail
/// degraded to a quarter of its bandwidth takes 4x the wire time.
/// Identity when no chaos handle is installed or the rail is nominal.
fn chaos_scaled(dur: Duration, chaos: &Option<ChaosState>, rail: usize) -> Duration {
    match chaos {
        Some(c) => {
            let mult = c.bandwidth_mult(rail);
            if mult == 1.0 || dur.is_zero() {
                dur
            } else {
                // `ChaosState` clamps the multiplier to >= 0.01.
                Duration::from_secs_f64(dur.as_secs_f64() / mult)
            }
        }
        None => dur,
    }
}

/// Current chaos drop boost for `rail` (0.0 without a handle).
fn chaos_drop_boost(chaos: &Option<ChaosState>, rail: usize) -> f64 {
    chaos.as_ref().map_or(0.0, |c| c.drop_boost(rail))
}

/// Apply the fault spec to one outgoing frame; survivors reach `push` in
/// delivery order. Shared by the serial worker and the parallel TX
/// workers so both runtimes exercise the identical injector (the rng
/// draw order — drop, corrupt, dup, reorder — is part of the contract:
/// serial fault sequences must not change underneath seeded tests).
#[allow(clippy::too_many_arguments)]
fn apply_faults(
    spec: &FaultSpec,
    elapsed: Duration,
    rail: usize,
    drop_boost: f64,
    rng: &mut Xoshiro256StarStar,
    held: &mut Option<PacketFrame>,
    tx_dropped: &AtomicU64,
    frame: PacketFrame,
    push: &mut dyn FnMut(PacketFrame),
) {
    // Scheduled outage: the rail eats everything, including probes.
    if spec
        .outages
        .iter()
        .any(|o| o.rail == rail && o.covers(elapsed))
    {
        tx_dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // The chaos boost folds into the one existing drop draw so the rng
    // sequence (and with it every seeded test) is unchanged when the
    // boost is zero.
    if rng.chance((spec.drop_prob + drop_boost).min(1.0)) {
        tx_dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let frame = if rng.chance(spec.corrupt_prob) {
        corrupt_frame(rng, frame)
    } else {
        frame
    };
    let dup = rng.chance(spec.dup_prob);
    if held.is_none() && rng.chance(spec.reorder_prob) {
        // Hold this packet back; it goes out right after the next one
        // on this rail (pairwise reorder). Clones are refcount bumps.
        *held = Some(frame.clone());
        if dup {
            push(frame);
        }
        return;
    }
    push(frame.clone());
    if dup {
        push(frame);
    }
    if let Some(h) = held.take() {
        push(h);
    }
}

/// Flip one bit somewhere in the wire image. Copy-on-write of the one
/// part holding the chosen byte — never the whole wire image. The part
/// cannot be mutated in place: it is refcount-shared with the sender's
/// retransmission state, and a real wire would not reach back into the
/// sender's memory either.
fn corrupt_frame(rng: &mut Xoshiro256StarStar, mut frame: PacketFrame) -> PacketFrame {
    let idx = rng.range_usize(0, frame.wire_len());
    let (part_idx, off) = frame.locate(idx).expect("index within wire image");
    let part = frame.part(part_idx).expect("located part exists");
    let mut raw = BytesMut::with_capacity(part.len());
    raw.extend_from_slice(part);
    raw[off] ^= 1 << rng.range_u64(0, 8);
    frame.replace_part(part_idx, raw.freeze());
    frame
}

/// Parallel runtime: one rail's TX worker. Pops published decisions off
/// its own outbox and sleeps out the shaped wire time *outside the
/// engine lock* — this is where cross-rail overlap (and the measured
/// speedup) comes from — then applies fault injection and hands the
/// frame to the peer's channel. The channel send wakes the peer's RX
/// worker directly; no global condvar is involved.
struct ParTxWorker {
    hub: Arc<ParallelHub>,
    rail: usize,
    outbox: OutboxReceiver,
    tx: Sender<PacketFrame>,
    platform: Platform,
    time_scale: f64,
    faults: Option<FaultSpec>,
    chaos: Option<ChaosState>,
    /// Reorder-injector hold slot for this rail.
    held: Option<PacketFrame>,
    rng: Xoshiro256StarStar,
    tx_dropped: Arc<AtomicU64>,
    start: Instant,
    /// Per-thread recorder shard; deposited into the hub at exit.
    shard: FlightRecorder,
}

/// Parallel TX worker: upper bound on one outbox wait.
const PAR_TX_IDLE_WAIT: Duration = Duration::from_millis(2);
/// Parallel RX worker: channel wait bound (shutdown responsiveness).
const PAR_RX_IDLE_WAIT: Duration = Duration::from_millis(10);

impl ParTxWorker {
    fn run(mut self) {
        loop {
            match self.outbox.pop_wait(PAR_TX_IDLE_WAIT) {
                Some(d) => self.inject(d),
                None => {
                    if self.hub.is_shutdown() {
                        break;
                    }
                }
            }
        }
        // Clean shutdown drains the outbox: published decisions still go
        // out so the peer's reassembly isn't left dangling.
        while let Some(d) = self.outbox.pop() {
            self.inject(d);
        }
        self.hub.deposit_shard(self.shard.events());
    }

    fn inject(&mut self, d: nmad_core::TxDecision) {
        let bytes = d.frame.wire_len();
        let dur = chaos_scaled(
            shaped_duration(&self.platform, self.rail, bytes, self.time_scale),
            &self.chaos,
            self.rail,
        );
        if dur > Duration::ZERO {
            std::thread::sleep(dur);
        }
        self.shard.record(
            Event::new(
                self.start.elapsed().as_nanos() as u64,
                EventKind::WorkerWrite,
            )
            .rail(self.rail)
            .seq(d.token.0)
            .size(bytes as u64)
            .aux(dur.as_nanos() as u64),
        );
        self.hub.push_completion(
            self.rail,
            Completion::TxDone {
                rail: self.rail,
                token: d.token,
            },
        );
        let boost = chaos_drop_boost(&self.chaos, self.rail);
        match &self.faults {
            None => {
                if boost > 0.0 && self.rng.chance(boost) {
                    self.tx_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let _ = self.tx.send(d.frame);
            }
            Some(spec) => {
                let elapsed = self.start.elapsed();
                let tx = &self.tx;
                apply_faults(
                    spec,
                    elapsed,
                    self.rail,
                    boost,
                    &mut self.rng,
                    &mut self.held,
                    &self.tx_dropped,
                    d.frame,
                    &mut |f| {
                        let _ = tx.send(f);
                    },
                );
            }
        }
    }
}

/// Parallel runtime: one rail's RX worker. Blocks on the rail's channel
/// (the sender's `send` is the wakeup) and queues arrivals for the
/// scheduler's next batched drain.
struct ParRxWorker {
    hub: Arc<ParallelHub>,
    rail: usize,
    rx: Receiver<PacketFrame>,
    start: Instant,
    shard: FlightRecorder,
}

impl ParRxWorker {
    fn run(mut self) {
        loop {
            match self.rx.recv_timeout(PAR_RX_IDLE_WAIT) {
                Ok(frame) => {
                    self.shard.record(
                        Event::new(self.start.elapsed().as_nanos() as u64, EventKind::WorkerRx)
                            .rail(self.rail)
                            .size(frame.wire_len() as u64),
                    );
                    self.hub.push_completion(
                        self.rail,
                        Completion::RxFrame {
                            rail: self.rail,
                            frame,
                        },
                    );
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if self.hub.is_shutdown() {
                        break;
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        self.hub.deposit_shard(self.shard.events());
    }
}

/// Build a connected pair of endpoints. With
/// [`EngineConfig::parallel`] off each endpoint gets one progress
/// thread; with it on, each gets the sharded pipeline (scheduler plus
/// per-rail TX/RX workers).
pub fn pair(config: FabricConfig) -> (Endpoint, Endpoint) {
    let mut cfg_engine = config.engine.clone();
    cfg_engine.crc = true;
    if cfg_engine.parallel {
        return pair_parallel(&config, cfg_engine);
    }
    let n_rails = config.platform.rail_count();

    let mk_shared = || {
        Arc::new(Shared {
            engine: Mutex::new(Engine::new(
                cfg_engine.clone(),
                config.platform.rails.clone(),
                vec![],
            )),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rx_errors: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
            work: Mutex::new(false),
            work_cv: Condvar::new(),
        })
    };
    let shared_a = mk_shared();
    let shared_b = mk_shared();

    let mut conns_a = Vec::new();
    let mut conns_b = Vec::new();
    for _ in 0..config.conns.max(1) {
        conns_a.push(shared_a.engine.lock().conn_open());
        conns_b.push(shared_b.engine.lock().conn_open());
    }

    let mut a_to_b_tx = Vec::new();
    let mut a_to_b_rx = Vec::new();
    let mut b_to_a_tx = Vec::new();
    let mut b_to_a_rx = Vec::new();
    for _ in 0..n_rails {
        let (t, r) = unbounded();
        a_to_b_tx.push(t);
        a_to_b_rx.push(r);
        let (t, r) = unbounded();
        b_to_a_tx.push(t);
        b_to_a_rx.push(r);
    }

    let start = Instant::now();
    let mk_worker = |shared: Arc<Shared>, peer: Arc<Shared>, rx, tx, seed| Worker {
        shared,
        peer,
        platform: config.platform.clone(),
        rx,
        tx,
        inflight: (0..n_rails).map(|_| None).collect(),
        held: (0..n_rails).map(|_| None).collect(),
        start,
        time_scale: config.time_scale,
        faults: config.faults.clone(),
        chaos: config.chaos.clone(),
        rng: Xoshiro256StarStar::new(seed),
    };

    let seed = config.faults.as_ref().map(|f| f.seed).unwrap_or(0);
    let worker_a = mk_worker(
        shared_a.clone(),
        shared_b.clone(),
        b_to_a_rx,
        a_to_b_tx,
        seed ^ 0xA,
    );
    let worker_b = mk_worker(
        shared_b.clone(),
        shared_a.clone(),
        a_to_b_rx,
        b_to_a_tx,
        seed ^ 0xB,
    );

    let ha = std::thread::Builder::new()
        .name("nmad-mem-a".into())
        .spawn(move || worker_a.run())
        .expect("spawn worker a");
    let hb = std::thread::Builder::new()
        .name("nmad-mem-b".into())
        .spawn(move || worker_b.run())
        .expect("spawn worker b");

    (
        Endpoint {
            fabric: Fabric::Serial(shared_a),
            workers: vec![ha],
            conns: conns_a,
        },
        Endpoint {
            fabric: Fabric::Serial(shared_b),
            workers: vec![hb],
            conns: conns_b,
        },
    )
}

/// Build a connected pair on the sharded parallel pipeline.
fn pair_parallel(config: &FabricConfig, cfg_engine: EngineConfig) -> (Endpoint, Endpoint) {
    let n_rails = config.platform.rail_count();
    let record_capacity = cfg_engine.record_capacity;
    let seed = config.faults.as_ref().map(|f| f.seed).unwrap_or(0);

    let mut a_to_b_tx = Vec::new();
    let mut a_to_b_rx = Vec::new();
    let mut b_to_a_tx = Vec::new();
    let mut b_to_a_rx = Vec::new();
    for _ in 0..n_rails {
        let (t, r) = unbounded();
        a_to_b_tx.push(t);
        a_to_b_rx.push(r);
        let (t, r) = unbounded();
        b_to_a_tx.push(t);
        b_to_a_rx.push(r);
    }

    let start = Instant::now();
    let build_side = |txs: Vec<Sender<PacketFrame>>,
                      rxs: Vec<Receiver<PacketFrame>>,
                      side_seed: u64,
                      name: &str| {
        let mut engine = Engine::new(cfg_engine.clone(), config.platform.rails.clone(), vec![]);
        let mut conns = Vec::new();
        for _ in 0..config.conns.max(1) {
            conns.push(engine.conn_open());
        }
        let (hub, senders, receivers) = ParallelHub::new(engine);
        let tx_dropped = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        for (rail, ((outbox, tx), rx)) in receivers.into_iter().zip(txs).zip(rxs).enumerate() {
            let txw = ParTxWorker {
                hub: hub.clone(),
                rail,
                outbox,
                tx,
                platform: config.platform.clone(),
                time_scale: config.time_scale,
                faults: config.faults.clone(),
                chaos: config.chaos.clone(),
                held: None,
                // Per-rail rng: deterministic, decorrelated across rails.
                rng: Xoshiro256StarStar::new(
                    side_seed ^ (rail as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                tx_dropped: tx_dropped.clone(),
                start,
                shard: FlightRecorder::with_capacity(record_capacity),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("nmad-mem-{name}-tx{rail}"))
                    .spawn(move || txw.run())
                    .expect("spawn tx worker"),
            );
            let rxw = ParRxWorker {
                hub: hub.clone(),
                rail,
                rx,
                start,
                shard: FlightRecorder::with_capacity(record_capacity),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("nmad-mem-{name}-rx{rail}"))
                    .spawn(move || rxw.run())
                    .expect("spawn rx worker"),
            );
        }
        // Scheduler last: joined after the I/O workers so it drains
        // their final completions before quiescing.
        let sched_hub = hub.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("nmad-mem-{name}-sched"))
                .spawn(move || sched_hub.run_scheduler(senders, start))
                .expect("spawn scheduler"),
        );
        Endpoint {
            fabric: Fabric::Parallel(ParShared { hub, tx_dropped }),
            workers,
            conns,
        }
    };

    let a = build_side(a_to_b_tx, b_to_a_rx, seed ^ 0xA, "a");
    let b = build_side(b_to_a_tx, a_to_b_rx, seed ^ 0xB, "b");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;

    const T: Duration = Duration::from_secs(10);

    fn fabric(kind: StrategyKind) -> (Endpoint, Endpoint) {
        pair(FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(kind),
        ))
    }

    fn random_payload(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn small_message_roundtrip() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random_payload(256, 1);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T), "send must complete");
        let msg = r.wait(T).expect("recv must complete");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
    }

    #[test]
    fn large_message_split_across_rails() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random_payload(2 << 20, 2);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        let msg = r.wait(T).expect("recv");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(st.rdv_handshakes >= 1, "large message must rendezvous");
        assert!(
            st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
            "both rails must carry bytes: {:?}",
            st.rails
        );
    }

    #[test]
    fn multi_segment_aggregation_on_threads() {
        let (a, b) = fabric(StrategyKind::AggregateEager);
        let c = a.conns()[0];
        let segs: Vec<Bytes> = (0..4)
            .map(|i| Bytes::from(random_payload(128, i)))
            .collect();
        let r = b.recv(c);
        let s = a.send(c, segs.clone());
        assert!(s.wait(T));
        let msg = r.wait(T).expect("recv");
        assert_eq!(msg.segments, segs);
        // Aggregation may or may not batch all 4 depending on thread
        // timing (that is the *opportunistic* part), but payload must be
        // intact either way and at least one packet must have flowed.
        assert!(a.stats().total_packets() >= 1);
    }

    #[test]
    fn pipelined_messages_in_order() {
        let (a, b) = fabric(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let n = 50;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        let sends: Vec<SendHandle> = (0..n)
            .map(|i| a.send(c, vec![Bytes::from(random_payload(64 + i * 13, i as u64))]))
            .collect();
        for s in &sends {
            assert!(s.wait(T));
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("recv");
            assert_eq!(
                msg.segments[0].as_ref(),
                random_payload(64 + i * 13, i as u64).as_slice(),
                "message {i} out of order or corrupted"
            );
        }
    }

    #[test]
    fn two_connections_are_independent() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.conns = 2;
        let (a, b) = pair(cfg);
        let (c0, c1) = (a.conns()[0], a.conns()[1]);
        let r1 = b.recv(c1);
        let r0 = b.recv(c0);
        a.send(c1, vec![Bytes::from_static(b"one")]);
        a.send(c0, vec![Bytes::from_static(b"zero")]);
        assert_eq!(&r0.wait(T).unwrap().segments[0][..], b"zero");
        assert_eq!(&r1.wait(T).unwrap().segments[0][..], b"one");
    }

    #[test]
    fn corruption_detected_not_delivered_silently() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
        );
        cfg.faults = Some(FaultSpec {
            corrupt_prob: 1.0, // every packet corrupted
            drop_prob: 0.0,
            seed: 7,
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let r = b.recv(c);
        a.send(c, vec![Bytes::from(random_payload(512, 3))]);
        // The message must NOT arrive intact...
        assert!(
            r.wait(Duration::from_millis(500)).is_none(),
            "corrupted packet must not complete a receive"
        );
        // ...and the receiver must have counted the rejection.
        assert!(b.rx_errors() > 0, "CRC failure must be counted");
    }

    #[test]
    fn drops_are_counted() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
        );
        cfg.faults = Some(FaultSpec {
            corrupt_prob: 0.0,
            drop_prob: 1.0,
            seed: 9,
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let r = b.recv(c);
        a.send(c, vec![Bytes::from_static(b"lost")]);
        assert!(r.wait(Duration::from_millis(300)).is_none());
        assert!(a.tx_dropped() > 0);
    }

    #[test]
    fn shaped_fabric_still_delivers() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.time_scale = 10.0; // 10x slower than modelled time
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let payload = random_payload(100_000, 11);
        let r = b.recv(c);
        let start = Instant::now();
        a.send(c, vec![Bytes::from(payload.clone())]);
        let msg = r.wait(T).expect("recv under shaping");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
        // 100 KB over ~2 GB/s scaled 10x -> at least ~0.4 ms of shaping.
        assert!(
            start.elapsed() > Duration::from_micros(300),
            "shaping must slow the transfer"
        );
    }

    #[test]
    fn acked_delivery_on_threads() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.engine.acked = true;
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(random_payload(50_000, 21))]);
        assert!(s.wait_acked(T), "delivery must be confirmed");
        assert!(r.wait(T).is_some());
        assert!(a.stats().acks_received >= 1);
    }

    /// Health timers scaled for tests: quick timeouts, quick probes.
    fn fast_health(engine: &mut EngineConfig) {
        engine.health.initial_rto_ns = 10_000_000; // 10 ms
        engine.health.min_rto_ns = 2_000_000;
        engine.health.max_rto_ns = 200_000_000;
        engine.health.probe_interval_ns = 20_000_000;
        engine.health.probe_timeout_ns = 10_000_000;
    }

    #[test]
    fn retransmission_recovers_on_a_lossy_fabric() {
        // 40% of packets silently dropped; the engine's own adaptive
        // retransmission timers must deliver every message exactly once —
        // no caller-driven retry loop.
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AggregateEager),
        );
        cfg.engine.acked = true;
        fast_health(&mut cfg.engine);
        cfg.faults = Some(FaultSpec {
            corrupt_prob: 0.0,
            drop_prob: 0.4,
            seed: 17,
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let n = 10;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        let sends: Vec<SendHandle> = (0..n)
            .map(|i| a.send(c, vec![Bytes::from(random_payload(500 + i * 37, i as u64))]))
            .collect();
        for (i, s) in sends.iter().enumerate() {
            assert!(
                s.wait_acked(Duration::from_secs(30)),
                "message {i} never recovered"
            );
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("delivered");
            assert_eq!(
                msg.segments[0].as_ref(),
                random_payload(500 + i * 37, i as u64).as_slice(),
                "message {i} corrupted"
            );
        }
        assert!(a.stats().retransmits > 0, "losses must have forced retries");
        assert_eq!(b.stats().msgs_received, n as u64, "exactly-once delivery");
    }

    #[test]
    fn duplicates_and_reordering_tolerated() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::Greedy),
        );
        cfg.engine.acked = true;
        fast_health(&mut cfg.engine);
        cfg.faults = Some(FaultSpec {
            drop_prob: 0.1,
            dup_prob: 0.3,
            reorder_prob: 0.3,
            seed: 29,
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let n = 12;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        let sends: Vec<SendHandle> = (0..n)
            .map(|i| {
                a.send(
                    c,
                    vec![Bytes::from(random_payload(300 + i * 53, 100 + i as u64))],
                )
            })
            .collect();
        for (i, s) in sends.iter().enumerate() {
            assert!(s.wait_acked(Duration::from_secs(30)), "message {i} lost");
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("delivered");
            assert_eq!(
                msg.segments[0].as_ref(),
                random_payload(300 + i * 53, 100 + i as u64).as_slice(),
                "message {i} corrupted"
            );
        }
        assert_eq!(b.stats().msgs_received, n as u64, "exactly-once delivery");
    }

    #[test]
    fn rail_failover_and_recovery_mid_transfer() {
        // The acceptance scenario: one of two rails dies while an 8 MB
        // acked transfer is in flight. The engine must (1) time out, blame
        // and take the dead rail out of service, (2) finish the transfer
        // over the survivor via automatic retransmission — the caller only
        // waits — and (3) reinstate the rail via probes once the outage
        // ends, walking the full Up -> Suspect -> Down -> Probing -> Up
        // cycle.
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.engine.acked = true;
        fast_health(&mut cfg.engine);
        cfg.faults = Some(FaultSpec {
            seed: 41,
            outages: vec![RailOutage {
                rail: 0,
                down_at: Duration::from_millis(5),
                up_at: Some(Duration::from_millis(700)),
            }],
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let payload = random_payload(8 << 20, 55);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        // No caller-driven retry: a plain wait must suffice.
        assert!(
            s.wait_acked(Duration::from_secs(60)),
            "transfer must survive the rail outage"
        );
        let msg = r.wait(T).expect("delivered");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(st.retransmits > 0, "outage must have forced retransmission");
        assert!(
            st.rails[0].timeouts > 0,
            "dead rail must have been blamed: {:?}",
            st.rails
        );
        // Wait out the outage window plus probe turnaround, then check
        // the rail came back.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let hist = a.rail_history(0);
            let recovered = is_subsequence(
                &[
                    RailState::Up,
                    RailState::Suspect,
                    RailState::Down,
                    RailState::Probing,
                    RailState::Up,
                ],
                &hist,
            );
            if recovered {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "rail 0 never walked the full recovery cycle: {hist:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(a.rail_states()[0], RailState::Up);
        assert!(
            a.stats().rails[0].probes_sent > 0,
            "recovery must come from probing"
        );
        assert!(a.stats().rails[0].state_transitions >= 4);
        // The reinstated rail carries traffic again.
        let r2 = b.recv(c);
        let s2 = a.send(c, vec![Bytes::from(random_payload(2 << 20, 56))]);
        assert!(s2.wait_acked(Duration::from_secs(30)));
        assert!(r2.wait(T).is_some());
    }

    /// True when `needle` appears in `haystack` in order (not necessarily
    /// contiguously).
    fn is_subsequence(needle: &[RailState], haystack: &[RailState]) -> bool {
        let mut it = haystack.iter();
        needle.iter().all(|n| it.any(|h| h == n))
    }

    /// The chaos dials act while the fabric runs: a full drop boost
    /// blackholes the wire, healing it lets the engine's own
    /// retransmission recover — no restart, no rebuild.
    #[test]
    fn chaos_dials_apply_live() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AggregateEager),
        );
        cfg.engine.acked = true;
        fast_health(&mut cfg.engine);
        let chaos = ChaosState::new(2);
        cfg.chaos = Some(chaos.clone());
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        // Clean roundtrip at identity.
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(random_payload(512, 7))]);
        assert!(s.wait_acked(T));
        assert!(r.wait(T).is_some());
        // Blackhole both rails mid-run.
        chaos.set_drop_boost(0, 1.0);
        chaos.set_drop_boost(1, 1.0);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(random_payload(512, 8))]);
        assert!(
            !s.wait_acked(Duration::from_millis(300)),
            "a fully dropped wire cannot confirm delivery"
        );
        // Heal: the pending send recovers through retransmission alone.
        chaos.heal_all();
        assert!(s.wait_acked(Duration::from_secs(30)), "heal must unstick");
        assert!(r.wait(T).is_some());
        assert!(a.stats().retransmits > 0);
        assert!(a.tx_dropped() > 0, "the boost must have eaten frames");
    }

    /// Reference-size split share of `rail` from the engine's live
    /// tables, in permille.
    fn split_share_permille(ep: &Endpoint, rail: usize) -> u16 {
        let eng = ep.fabric.engine().lock();
        let refs: Vec<&nmad_core::PerfTable> = eng.tables().iter().collect();
        nmad_core::split_ratio_permille(&refs, 1 << 20)[rail]
    }

    /// Satellite scenario: a rail held Down for many RTOs under
    /// continuous load. No request may get stuck, the rail must come
    /// back via probing once the outage ends, and the online calibrator
    /// must first strip the dead rail's split share (failover penalty)
    /// and then let it re-earn that share from fresh samples.
    #[test]
    fn long_outage_under_load_re_earns_split_share() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.engine.acked = true;
        fast_health(&mut cfg.engine);
        cfg.engine.calibration.enabled = true;
        cfg.engine.calibration.rebuild_every = 4;
        cfg.engine.calibration.min_samples = 4;
        // ~150 initial-RTO periods, dozens of probe intervals.
        let outage_end = Duration::from_millis(1500);
        cfg.faults = Some(FaultSpec {
            seed: 61,
            outages: vec![RailOutage {
                rail: 0,
                down_at: Duration::from_millis(5),
                up_at: Some(outage_end),
            }],
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let share_nominal = split_share_permille(&a, 0);
        assert!(share_nominal > 0, "rail 0 must start with a split share");

        // Continuous load spanning the whole outage and a bit beyond.
        // Every message is awaited: a request stuck forever fails here,
        // not in some later diagnostic.
        let start = Instant::now();
        let mut share_min = share_nominal;
        let mut i = 0u64;
        while start.elapsed() < outage_end + Duration::from_millis(500) {
            let r = b.recv(c);
            let s = a.send(c, vec![Bytes::from(random_payload(256 << 10, 200 + i))]);
            assert!(
                s.wait_acked(Duration::from_secs(30)),
                "message {i} stuck during the outage"
            );
            assert!(r.wait(T).is_some(), "message {i} not delivered");
            share_min = share_min.min(split_share_permille(&a, 0));
            i += 1;
        }
        let st = a.stats();
        assert!(st.retransmits > 0, "outage must have forced retransmission");
        assert!(st.rails[0].timeouts > 0, "dead rail must have been blamed");
        assert!(
            share_min < share_nominal,
            "failover penalty must strip split share: nominal {share_nominal}, min {share_min}"
        );

        // The rail is reinstated via probing.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let hist = a.rail_history(0);
            if is_subsequence(
                &[
                    RailState::Up,
                    RailState::Suspect,
                    RailState::Down,
                    RailState::Probing,
                    RailState::Up,
                ],
                &hist,
            ) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "rail 0 never walked the recovery cycle: {hist:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(a.stats().rails[0].probes_sent > 0);

        // Fresh load on the healed fabric: observed transfer times pull
        // the penalized EWMA back and rail 0 re-earns its share (>= 80%
        // of nominal).
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let r = b.recv(c);
            let s = a.send(c, vec![Bytes::from(random_payload(256 << 10, 900 + i))]);
            assert!(s.wait_acked(Duration::from_secs(10)), "post-recovery stuck");
            assert!(r.wait(T).is_some());
            i += 1;
            let share = split_share_permille(&a, 0);
            if u32::from(share) * 10 >= u32::from(share_nominal) * 8 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "rail 0 never re-earned its split share: nominal {share_nominal}, now {share}"
            );
        }
    }

    #[test]
    fn ack_never_arrives_when_message_dropped() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
        );
        cfg.engine.acked = true;
        cfg.faults = Some(FaultSpec {
            corrupt_prob: 0.0,
            drop_prob: 1.0,
            seed: 3,
            ..FaultSpec::default()
        });
        let (a, _b) = pair(cfg);
        let c = a.conns()[0];
        let s = a.send(c, vec![Bytes::from_static(b"doomed")]);
        // Local completion may happen (bytes injected)...
        s.wait(Duration::from_millis(200));
        // ...but delivery is never confirmed.
        assert!(!s.wait_acked(Duration::from_millis(300)));
    }

    #[test]
    fn unexpected_message_buffered_until_recv() {
        let (a, b) = fabric(StrategyKind::Greedy);
        let c = a.conns()[0];
        let s = a.send(c, vec![Bytes::from_static(b"early")]);
        assert!(s.wait(T));
        std::thread::sleep(Duration::from_millis(20));
        let msg = b.recv(c).wait(T).expect("buffered unexpected message");
        assert_eq!(&msg.segments[0][..], b"early");
    }

    // ------------------------------------------------------------------
    // Parallel pipeline on the in-process fabric
    // ------------------------------------------------------------------

    fn fabric_parallel(kind: StrategyKind) -> (Endpoint, Endpoint) {
        let mut engine = EngineConfig::with_strategy(kind);
        engine.parallel = true;
        pair(FabricConfig::new(platform::paper_platform(), engine))
    }

    #[test]
    fn parallel_small_message_roundtrip() {
        let (a, b) = fabric_parallel(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random_payload(256, 61);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T), "send must complete");
        let msg = r.wait(T).expect("recv must complete");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
        assert_eq!(b.rx_errors(), 0);
    }

    #[test]
    fn parallel_large_message_split_across_rails() {
        let (a, b) = fabric_parallel(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let payload = random_payload(2 << 20, 62);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        let msg = r.wait(T).expect("recv");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
        let st = a.stats();
        assert!(
            st.rails[0].payload_bytes > 0 && st.rails[1].payload_bytes > 0,
            "both rails must carry bytes: {:?}",
            st.rails
        );
        assert!(st.obs.lock_hold_ns.count() > 0, "scheduler passes measured");
    }

    #[test]
    fn parallel_pipelined_messages_in_order() {
        let (a, b) = fabric_parallel(StrategyKind::AdaptiveSplit);
        let c = a.conns()[0];
        let n = 50;
        let recvs: Vec<RecvHandle> = (0..n).map(|_| b.recv(c)).collect();
        let sends: Vec<SendHandle> = (0..n)
            .map(|i| {
                a.send(
                    c,
                    vec![Bytes::from(random_payload(64 + i * 13, 200 + i as u64))],
                )
            })
            .collect();
        for s in &sends {
            assert!(s.wait(T));
        }
        for (i, r) in recvs.into_iter().enumerate() {
            let msg = r.wait(T).expect("recv");
            assert_eq!(
                msg.segments[0].as_ref(),
                random_payload(64 + i * 13, 200 + i as u64).as_slice(),
                "message {i} out of order or corrupted"
            );
        }
    }

    #[test]
    fn parallel_acked_delivery() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.engine.acked = true;
        cfg.engine.parallel = true;
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(random_payload(50_000, 63))]);
        assert!(s.wait_acked(T), "delivery must be confirmed");
        assert!(r.wait(T).is_some());
        assert!(a.stats().acks_received >= 1);
    }

    #[test]
    fn parallel_shaped_fabric_overlaps_rails() {
        // The point of the pipeline: with shaping, the per-rail TX
        // workers sleep out their wire time concurrently, so a striped
        // transfer must not take the sum of both rails' serial times.
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        );
        cfg.time_scale = 10.0;
        cfg.engine.parallel = true;
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let payload = random_payload(100_000, 64);
        let r = b.recv(c);
        let s = a.send(c, vec![Bytes::from(payload.clone())]);
        assert!(s.wait(T));
        let msg = r.wait(T).expect("recv under shaping");
        assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
    }

    #[test]
    fn parallel_corruption_detected() {
        let mut cfg = FabricConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::SingleRail(0)),
        );
        cfg.engine.parallel = true;
        cfg.faults = Some(FaultSpec {
            corrupt_prob: 1.0,
            drop_prob: 0.0,
            seed: 71,
            ..FaultSpec::default()
        });
        let (a, b) = pair(cfg);
        let c = a.conns()[0];
        let r = b.recv(c);
        a.send(c, vec![Bytes::from(random_payload(512, 72))]);
        assert!(
            r.wait(Duration::from_millis(500)).is_none(),
            "corrupted packet must not complete a receive"
        );
        assert!(b.rx_errors() > 0, "CRC failure must be counted");
    }
}
