//! Property-based tests for the wire format invariants.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

use nmad_wire::agg::{parse_aggregate, AggregateBuilder, AggregateEntry};
use nmad_wire::checksum::{self, Kernel};
use nmad_wire::frame::encode_parts_frame;
use nmad_wire::header::{
    AckPacket, ChunkPacket, EagerPacket, Packet, PacketKind, RdvAck, RdvRequest, SamplePacket,
};
use nmad_wire::reassembly::Reassembler;
use nmad_wire::split::SplitPlan;
use nmad_wire::FrameBody;

fn arb_bytes(max: usize) -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    prop_oneof![
        (any::<u64>(), any::<u16>(), 1..64u16, arb_bytes(512)).prop_map(
            |(msg_id, seg_raw, total_segs, data)| {
                Packet::Eager(EagerPacket {
                    msg_id,
                    seg_index: seg_raw % total_segs,
                    total_segs,
                    data,
                })
            }
        ),
        (any::<u64>(), any::<u16>(), any::<u16>(), any::<u64>()).prop_map(
            |(msg_id, seg_index, total_segs, total_len)| {
                Packet::RdvRequest(RdvRequest {
                    msg_id,
                    seg_index,
                    total_segs,
                    total_len,
                })
            }
        ),
        (any::<u64>(), any::<u16>())
            .prop_map(|(msg_id, seg_index)| Packet::RdvAck(RdvAck { msg_id, seg_index })),
        any::<u64>().prop_map(|msg_id| Packet::Ack(AckPacket { msg_id })),
        (any::<u64>(), arb_bytes(256))
            .prop_map(|(probe_id, data)| Packet::SamplePing(SamplePacket { probe_id, data })),
        (
            any::<u64>(),
            0..1024u64,
            0..512u64,
            any::<u16>(),
            any::<u16>(),
            1..16u16
        )
            .prop_map(
                |(msg_id, total_extra, len, seg_index, chunk_index, total_segs)| {
                    // Construct a consistent chunk: offset + len <= total_len.
                    let data = Bytes::from(vec![0xA5u8; len as usize]);
                    let offset = total_extra;
                    Packet::Chunk(ChunkPacket {
                        msg_id,
                        seg_index,
                        total_segs,
                        offset,
                        total_len: offset + len,
                        chunk_index,
                        data,
                    })
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any packet survives an encode/decode round trip, with and without CRC.
    #[test]
    fn packet_roundtrip(pkt in arb_packet(), conn in any::<u32>(), seq in any::<u32>(), crc in any::<bool>()) {
        let buf = pkt.encode(conn, seq, crc);
        prop_assert_eq!(buf.len(), pkt.wire_len());
        let (env, decoded) = Packet::decode(&buf).unwrap();
        prop_assert_eq!(env.conn_id, conn);
        prop_assert_eq!(env.seq, seq);
        prop_assert_eq!(env.crc_checked, crc);
        prop_assert_eq!(decoded, pkt);
    }

    /// Decoding any strict prefix of a packet fails rather than panicking
    /// or succeeding.
    #[test]
    fn truncated_prefix_never_decodes(pkt in arb_packet(), frac in 0.0f64..1.0) {
        let buf = pkt.encode(1, 1, true);
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assume!(cut < buf.len());
        prop_assert!(Packet::decode(&buf[..cut]).is_err());
    }

    /// Single-byte corruption of a CRC-protected packet is either detected
    /// or confined to the envelope fields checked separately.
    #[test]
    fn payload_corruption_detected(data in prop::collection::vec(any::<u8>(), 1..512), flip in any::<usize>(), bit in 0..8u32) {
        let pkt = Packet::Eager(EagerPacket {
            msg_id: 1, seg_index: 0, total_segs: 1, data: Bytes::from(data),
        });
        let buf = pkt.encode(0, 0, true);
        let mut raw = buf.to_vec();
        // Corrupt somewhere in the body (past the envelope).
        let idx = 24 + (flip % (raw.len() - 24));
        raw[idx] ^= 1 << bit;
        if let Ok((_, decoded)) = Packet::decode(&raw) {
            prop_assert_ne!(decoded, pkt, "silent corruption");
        } // else: detected, good

    }

    /// Aggregation containers preserve entry order, ids and payload bytes.
    #[test]
    fn aggregate_roundtrip(entries in prop::collection::vec(
        (any::<u64>(), any::<u16>(), 1..32u16, arb_bytes(128)), 1..20)) {
        let mut b = AggregateBuilder::new();
        let mut expect = Vec::new();
        for (msg_id, seg_raw, total_segs, data) in entries {
            let e = AggregateEntry { conn_id: (msg_id >> 32) as u32, msg_id, seg_index: seg_raw % total_segs, total_segs, data };
            expect.push(e.clone());
            b.push(e);
        }
        let Packet::Aggregate(body) = b.finish() else { unreachable!() };
        let parsed = parse_aggregate(&body).unwrap();
        prop_assert_eq!(parsed, expect);
    }

    /// Ratio split plans always cover the message exactly, with no chunk
    /// below the minimum except the degenerate single-chunk case.
    #[test]
    fn split_plan_covers(total in 0u64..(32 << 20), w0 in 0.0f64..2000.0, w1 in 0.0f64..2000.0, min_chunk in 1u64..65_536) {
        prop_assume!(w0 + w1 > 0.0);
        let plan = SplitPlan::by_ratio(total, &[w0, w1], min_chunk);
        prop_assert!(plan.validate().is_ok());
        prop_assert_eq!(plan.bytes_on_rail(0) + plan.bytes_on_rail(1), total);
        if plan.len() > 1 {
            for c in plan.chunks() {
                prop_assert!(c.len >= min_chunk,
                    "multi-chunk plan has a {}-byte chunk < min {}", c.len, min_chunk);
            }
        }
    }

    /// A chunked segment reassembles to the exact original bytes under any
    /// permutation of chunk arrivals.
    #[test]
    fn reassembly_any_order(
        payload in prop::collection::vec(any::<u8>(), 1..8192),
        cuts in prop::collection::vec(any::<usize>(), 0..6),
        seed in any::<u64>(),
    ) {
        // Build a random partition of the payload.
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c % payload.len()).collect();
        offsets.push(0);
        offsets.push(payload.len());
        offsets.sort_unstable();
        offsets.dedup();
        let mut pieces: Vec<(u64, &[u8])> = offsets.windows(2)
            .map(|w| (w[0] as u64, &payload[w[0]..w[1]]))
            .collect();
        // Shuffle deterministically.
        let mut rng = nmad_sim::Xoshiro256StarStar::new(seed);
        rng.shuffle(&mut pieces);

        let mut r = Reassembler::new();
        let mut done = None;
        let n = pieces.len();
        for (i, (off, data)) in pieces.into_iter().enumerate() {
            let res = r.insert_chunk(42, 0, 1, off, payload.len() as u64, data).unwrap();
            if i + 1 == n {
                done = res;
            } else {
                prop_assert!(res.is_none(), "completed early");
            }
        }
        let done = done.expect("must complete on last chunk");
        prop_assert_eq!(done.into_contiguous(), payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The vectored encoder and the legacy flat encoder produce
    /// byte-identical wire images for any packet. This is the contract
    /// that lets the two coexist: a frame's parts concatenated are
    /// exactly what `encode` would have flattened.
    #[test]
    fn vectored_encoder_matches_flat(pkt in arb_packet(), conn in any::<u32>(), seq in any::<u32>(), crc in any::<bool>()) {
        let flat = pkt.encode(conn, seq, crc);
        let frame = pkt.encode_frame(conn, seq, crc);
        prop_assert_eq!(frame.wire_len(), flat.len());
        let image = frame.to_bytes();
        prop_assert_eq!(image.as_ref(), flat.as_slice());
    }

    /// Decoding a scatter-gather frame yields the same packet as the flat
    /// decoder, without flattening first.
    #[test]
    fn frame_decode_matches_flat_decode(pkt in arb_packet(), conn in any::<u32>(), seq in any::<u32>(), crc in any::<bool>()) {
        let frame = pkt.encode_frame(conn, seq, crc);
        let (env, body, _straddle) = frame.decode().unwrap();
        prop_assert_eq!(env.conn_id, conn);
        prop_assert_eq!(env.seq, seq);
        prop_assert_eq!(env.crc_checked, crc);
        let FrameBody::Packet(decoded) = body else {
            return Err("non-aggregate packet decoded as aggregate".into());
        };
        prop_assert_eq!(decoded, pkt);
    }

    /// The scatter-gather aggregate container is byte-identical to the
    /// legacy copy-everything container for any entry mix and any staging
    /// threshold (the threshold only moves bytes between "staged" and
    /// "zero-copy", never changes the wire image).
    #[test]
    fn aggregate_parts_match_flat_container(
        entries in prop::collection::vec(
            (any::<u64>(), any::<u16>(), 1..32u16, arb_bytes(128)), 1..20),
        threshold in 0usize..256,
    ) {
        let mut flat_b = AggregateBuilder::new();
        let mut parts_b = AggregateBuilder::new();
        for (msg_id, seg_raw, total_segs, data) in entries {
            let e = AggregateEntry {
                conn_id: (msg_id >> 32) as u32,
                msg_id,
                seg_index: seg_raw % total_segs,
                total_segs,
                data,
            };
            flat_b.push(e.clone());
            parts_b.push(e);
        }
        let flat_pkt = flat_b.finish();
        let flat = flat_pkt.encode(7, 9, true);
        let agg = parts_b.finish_parts(threshold, BytesMut::new());
        prop_assert_eq!(
            agg.staged_bytes + agg.zero_copy_bytes + nmad_wire::agg::CONTAINER_OVERHEAD
                + nmad_wire::agg::ENTRY_OVERHEAD * agg_entry_count(&flat),
            agg.container_len
        );
        let frame = encode_parts_frame(PacketKind::Aggregate, 7, 9, true, agg.parts, BytesMut::new());
        let image = frame.to_bytes();
        prop_assert_eq!(image.as_ref(), flat.as_slice());
    }

    /// Chunks sliced zero-copy out of a message (`Bytes::slice`), carried
    /// through frame encode/decode, reassemble to the exact original.
    #[test]
    fn zero_copy_chunks_reassemble(
        payload in prop::collection::vec(any::<u8>(), 1..8192),
        cuts in prop::collection::vec(any::<usize>(), 0..6),
        seed in any::<u64>(),
    ) {
        let original = Bytes::from(payload);
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c % original.len()).collect();
        offsets.push(0);
        offsets.push(original.len());
        offsets.sort_unstable();
        offsets.dedup();
        let mut pieces: Vec<(u64, Bytes)> = offsets.windows(2)
            .map(|w| (w[0] as u64, original.slice(w[0]..w[1])))
            .collect();
        let mut rng = nmad_sim::Xoshiro256StarStar::new(seed);
        rng.shuffle(&mut pieces);

        let mut r = Reassembler::new();
        let mut done = None;
        for (i, (off, data)) in pieces.iter().enumerate() {
            let pkt = Packet::Chunk(ChunkPacket {
                msg_id: 42,
                seg_index: 0,
                total_segs: 1,
                offset: *off,
                total_len: original.len() as u64,
                chunk_index: i as u16,
                data: data.clone(),
            });
            let frame = pkt.encode_frame(3, i as u32, true);
            let (_, body, _) = frame.decode().unwrap();
            let FrameBody::Packet(Packet::Chunk(c)) = body else {
                return Err("chunk decoded as something else".into());
            };
            let res = r.insert_chunk(c.msg_id, c.seg_index, c.total_segs, c.offset,
                c.total_len, c.data.as_ref()).unwrap();
            if let Some(d) = res { done = Some(d); }
        }
        let done = done.expect("must complete once all chunks arrive");
        prop_assert_eq!(done.into_contiguous(), original.as_ref());
    }
}

/// Entry count of a flat-encoded aggregate packet (for the length identity).
fn agg_entry_count(wire: &[u8]) -> usize {
    // Envelope is 24 bytes; the container starts with a u16 entry count.
    u16::from_le_bytes(wire[24..26].try_into().unwrap()) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Feeding completely arbitrary bytes to the decoder must never panic
    /// — it either errors or yields a structurally valid packet.
    #[test]
    fn decode_arbitrary_bytes_never_panics(raw in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Packet::decode(&raw);
    }

    /// Arbitrary bytes prefixed with a valid envelope header also must not
    /// panic (exercises the per-kind body decoders).
    #[test]
    fn decode_valid_envelope_arbitrary_body(kind in 1u8..=8, body in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut raw = Vec::new();
        raw.extend_from_slice(&0x4D4Eu16.to_le_bytes()); // magic
        raw.push(1); // version
        raw.push(kind);
        raw.extend_from_slice(&0u32.to_le_bytes()); // conn
        raw.extend_from_slice(&0u32.to_le_bytes()); // seq
        raw.extend_from_slice(&(body.len() as u32).to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes()); // crc (flag off)
        raw.extend_from_slice(&0u16.to_le_bytes()); // flags
        raw.extend_from_slice(&0u16.to_le_bytes()); // reserved
        raw.extend_from_slice(&body);
        let _ = Packet::decode(&raw);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every CRC kernel the CPU supports (slicing-by-16 and, where
    /// detected, the PCLMUL fold) computes bit-identical checksums to the
    /// scalar reference over arbitrary bytes fed through arbitrary
    /// streaming splits — duplicate cut points deliberately produce empty
    /// parts. This is the contract that lets [`checksum::update`]
    /// dispatch to whichever kernel the CPU supports.
    #[test]
    fn crc_kernels_match_scalar_on_any_split(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        cuts in prop::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        // No dedup: repeated offsets become zero-length parts, which the
        // streaming API must absorb without touching the state.
        let reference =
            checksum::crc32_finish(checksum::update_with(Kernel::Scalar, checksum::crc32_init(), &data));
        for kernel in checksum::available_kernels() {
            let mut state = checksum::crc32_init();
            for w in offsets.windows(2) {
                state = checksum::update_with(kernel, state, &data[w[0]..w[1]]);
            }
            prop_assert_eq!(
                checksum::crc32_finish(state), reference,
                "kernel {} diverged from scalar", kernel.name()
            );
        }
    }

    /// A 1-byte tail after the bulk body — the worst case for wide
    /// kernels' remainder handling — plus a trailing empty part matches
    /// the scalar whole-buffer answer for every kernel.
    #[test]
    fn crc_kernels_handle_one_byte_tails(data in prop::collection::vec(any::<u8>(), 1..1024)) {
        let split = data.len() - 1;
        let reference =
            checksum::crc32_finish(checksum::update_with(Kernel::Scalar, checksum::crc32_init(), &data));
        for kernel in checksum::available_kernels() {
            let mut state = checksum::crc32_init();
            state = checksum::update_with(kernel, state, &data[..split]);
            state = checksum::update_with(kernel, state, &data[split..]);
            state = checksum::update_with(kernel, state, &[]);
            prop_assert_eq!(
                checksum::crc32_finish(state), reference,
                "kernel {} mishandled a 1-byte tail", kernel.name()
            );
        }
    }
}
