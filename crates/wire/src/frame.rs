//! Scatter-gather packet frames (the zero-copy datapath).
//!
//! [`Packet::encode`] flattens a packet into one contiguous buffer, which
//! costs a memcpy of every payload byte on the hot path. A [`PacketFrame`]
//! avoids that: it is a small owned *head* part (envelope + kind-specific
//! body header) followed by refcounted [`Bytes`] payload slices, i.e. an
//! iovec list. Runtimes that can gather (`write_vectored`, the simulator's
//! modelled DMA, the in-process fabric) transmit the parts directly; the
//! byte stream on the wire is identical to the flat encoding
//! ([`Packet::encode_frame`] and [`Packet::encode`] produce the same
//! image, property-tested in `tests/proptests.rs`).
//!
//! Copy discipline (see DESIGN.md "Datapath and copy discipline"):
//!
//! * encode never copies payload bytes — they ride as slices of the
//!   application's segment buffers;
//! * the only allowed tx-side staging copy is sub-PIO aggregation
//!   ([`crate::agg::AggregateBuilder::finish_parts`]);
//! * decode ([`PacketFrame::decode`]) slices payloads out of the frame
//!   parts without copying; it copies only when a field straddles a part
//!   boundary, and reports how many bytes that cost.

use bytes::{BufMut, Bytes, BytesMut};

use crate::agg::AggregateEntry;
use crate::checksum::{crc32_finish, crc32_init, update};
use crate::error::WireError;
use crate::header::{Envelope, Packet, PacketKind, ENVELOPE_LEN, FLAG_CRC, MAGIC, VERSION};
use crate::ConnId;

/// Parts stored inline in a [`PartList`] before spilling to the heap.
/// Covers the common frames (head + payload, or head + a few aggregate
/// runs) without allocating.
pub const INLINE_PARTS: usize = 4;

/// A small-vector of frame parts: up to [`INLINE_PARTS`] inline, the rest
/// in a spill `Vec`. `Bytes::new()` is allocation-free, so an empty list
/// costs nothing.
#[derive(Clone, Default)]
pub struct PartList {
    inline: [Bytes; INLINE_PARTS],
    len: usize,
    spill: Vec<Bytes>,
}

impl PartList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no parts were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a part. Empty parts are skipped — they carry no wire bytes.
    pub fn push(&mut self, part: Bytes) {
        if part.is_empty() {
            return;
        }
        if self.len < INLINE_PARTS {
            self.inline[self.len] = part;
        } else {
            self.spill.push(part);
        }
        self.len += 1;
    }

    /// The `i`-th part.
    pub fn get(&self, i: usize) -> Option<&Bytes> {
        if i >= self.len {
            None
        } else if i < INLINE_PARTS {
            Some(&self.inline[i])
        } else {
            Some(&self.spill[i - INLINE_PARTS])
        }
    }

    fn get_mut(&mut self, i: usize) -> Option<&mut Bytes> {
        if i >= self.len {
            None
        } else if i < INLINE_PARTS {
            Some(&mut self.inline[i])
        } else {
            Some(&mut self.spill[i - INLINE_PARTS])
        }
    }

    /// Iterate over the parts.
    pub fn iter(&self) -> PartIter<'_> {
        PartIter { list: self, idx: 0 }
    }

    /// Total bytes across parts.
    pub fn total_len(&self) -> usize {
        self.iter().map(|p| p.len()).sum()
    }
}

impl std::fmt::Debug for PartList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.iter().map(|p| p.len()))
            .finish()
    }
}

/// Borrowing iterator over a [`PartList`].
pub struct PartIter<'a> {
    list: &'a PartList,
    idx: usize,
}

impl<'a> Iterator for PartIter<'a> {
    type Item = &'a Bytes;
    fn next(&mut self) -> Option<&'a Bytes> {
        let p = self.list.get(self.idx)?;
        self.idx += 1;
        Some(p)
    }
}

impl<'a> IntoIterator for &'a PartList {
    type Item = &'a Bytes;
    type IntoIter = PartIter<'a>;
    fn into_iter(self) -> PartIter<'a> {
        self.iter()
    }
}

/// One physical packet as a scatter-gather list.
///
/// Invariants:
///
/// * the concatenation of the parts is exactly the wire image the flat
///   encoder would produce — `wire_len()` equals that total;
/// * part 0 (when present) starts with the 24-byte envelope;
/// * an empty frame (`PacketFrame::empty()`) has **zero** parts and a
///   `wire_len()` of 0 — placeholder frames must never contribute phantom
///   bytes to buffer or copy accounting.
#[derive(Clone, Default)]
pub struct PacketFrame {
    parts: PartList,
    wire_len: usize,
}

impl PacketFrame {
    /// A frame with no parts and zero wire length (the placeholder for
    /// "no packet"; never counts any bytes).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Wrap an already-contiguous wire image as a single-part frame
    /// (receive side: a frame split out of a socket ring, or a legacy
    /// flat encoding).
    pub fn from_wire(wire: Bytes) -> Self {
        let wire_len = wire.len();
        let mut parts = PartList::new();
        parts.push(wire);
        PacketFrame { parts, wire_len }
    }

    /// Assemble a frame from an envelope head and body parts. `head` must
    /// start with the envelope; the caller is responsible for field
    /// consistency (this is the low-level constructor used by the
    /// encoders and fault injection).
    pub fn from_parts(head: Bytes, body: PartList) -> Self {
        let mut parts = PartList::new();
        let mut wire_len = head.len();
        parts.push(head);
        for p in body.iter() {
            wire_len += p.len();
            parts.push(p.clone());
        }
        PacketFrame { parts, wire_len }
    }

    /// Total bytes this frame occupies on the wire.
    pub fn wire_len(&self) -> usize {
        self.wire_len
    }

    /// True when the frame has no parts (the `empty()` placeholder).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Number of scatter-gather parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The `i`-th part.
    pub fn part(&self, i: usize) -> Option<&Bytes> {
        self.parts.get(i)
    }

    /// Iterate over the parts (iovec order).
    pub fn parts(&self) -> PartIter<'_> {
        self.parts.iter()
    }

    /// The head part (envelope + body header), if any. Kept by the engine
    /// so its buffer can be reclaimed into the pool at tx completion.
    pub fn head(&self) -> Option<&Bytes> {
        self.parts.get(0)
    }

    /// Locate the part containing global byte offset `idx`, returning
    /// `(part_index, offset_within_part)`.
    pub fn locate(&self, idx: usize) -> Option<(usize, usize)> {
        let mut base = 0;
        for (i, p) in self.parts.iter().enumerate() {
            if idx < base + p.len() {
                return Some((i, idx - base));
            }
            base += p.len();
        }
        None
    }

    /// Replace part `i` with an equal-length buffer (fault injection:
    /// copy-on-write corruption of a single part without flattening the
    /// frame or mutating buffers shared with the sender).
    pub fn replace_part(&mut self, i: usize, part: Bytes) {
        let slot = self.parts.get_mut(i).expect("part index in range");
        assert_eq!(slot.len(), part.len(), "replacement must keep wire length");
        *slot = part;
    }

    /// Flatten into one contiguous buffer. Zero-copy when the frame is
    /// already a single part; otherwise copies `wire_len()` bytes (compat
    /// path — the hot paths transmit the parts directly).
    pub fn to_bytes(&self) -> Bytes {
        match self.parts.len() {
            0 => Bytes::new(),
            1 => self.parts.get(0).expect("one part").clone(),
            _ => {
                let mut buf = BytesMut::with_capacity(self.wire_len);
                for p in self.parts.iter() {
                    buf.extend_from_slice(p);
                }
                buf.freeze()
            }
        }
    }

    /// Decode the frame without flattening it.
    ///
    /// Payload bytes are sliced out of the frame parts (refcounted, no
    /// copy) whenever a field lies within one part — which is always the
    /// case for frames built by the vectored encoder and for single-part
    /// frames. The `usize` in the result is the number of payload bytes
    /// that *were* copied because they straddled a part boundary, so the
    /// engine can account for them.
    pub fn decode(&self) -> Result<(Envelope, FrameBody, usize), WireError> {
        let mut r = SgReader::new(self, "envelope");
        let magic = r.u16()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = PacketKind::from_u8(r.u8()?)?;
        let conn_id = r.u32()?;
        let seq = r.u32()?;
        let payload_len = r.u32()? as usize;
        let crc = r.u32()?;
        let flags = r.u16()?;
        let _reserved = r.u16()?;
        if r.remaining() < payload_len {
            return Err(WireError::Truncated {
                what: "packet payload",
                needed: payload_len,
                available: r.remaining(),
            });
        }
        if r.remaining() > payload_len {
            return Err(WireError::TrailingBytes(r.remaining() - payload_len));
        }
        let crc_checked = flags & FLAG_CRC != 0;
        if crc_checked {
            let computed = r.crc_of_rest();
            if computed != crc {
                return Err(WireError::BadChecksum {
                    computed,
                    expected: crc,
                });
            }
        }
        r.what = "packet body";
        let body = Self::decode_body_sg(kind, &mut r)?;
        r.expect_end()?;
        Ok((
            Envelope {
                conn_id,
                seq,
                kind,
                crc_checked,
            },
            body,
            r.copied(),
        ))
    }

    fn decode_body_sg(kind: PacketKind, r: &mut SgReader<'_>) -> Result<FrameBody, WireError> {
        use crate::header::{
            AckPacket, ChunkPacket, EagerPacket, RdvAck, RdvRequest, SamplePacket,
        };
        let pkt = match kind {
            PacketKind::Eager => {
                let msg_id = r.u64()?;
                let seg_index = r.u16()?;
                let total_segs = r.u16()?;
                let len = r.u32()? as usize;
                let data = r.bytes(len)?;
                Packet::Eager(EagerPacket {
                    msg_id,
                    seg_index,
                    total_segs,
                    data,
                })
            }
            PacketKind::Aggregate => {
                // Parse entries straight out of the parts so aggregate
                // payloads stay zero-copy on the receive side too.
                let count = r.u16()? as usize;
                if count == 0 {
                    return Err(WireError::BadLength {
                        what: "aggregate count",
                        value: 0,
                    });
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let conn_id = r.u32()?;
                    let msg_id = r.u64()?;
                    let seg_index = r.u16()?;
                    let total_segs = r.u16()?;
                    let len = r.u32()? as usize;
                    let data = r.bytes(len)?;
                    entries.push(AggregateEntry {
                        conn_id,
                        msg_id,
                        seg_index,
                        total_segs,
                        data,
                    });
                }
                return Ok(FrameBody::Aggregate(entries));
            }
            PacketKind::RdvRequest => Packet::RdvRequest(RdvRequest {
                msg_id: r.u64()?,
                seg_index: r.u16()?,
                total_segs: r.u16()?,
                total_len: r.u64()?,
            }),
            PacketKind::RdvAck => Packet::RdvAck(RdvAck {
                msg_id: r.u64()?,
                seg_index: r.u16()?,
            }),
            PacketKind::Chunk => {
                let msg_id = r.u64()?;
                let seg_index = r.u16()?;
                let total_segs = r.u16()?;
                let offset = r.u64()?;
                let total_len = r.u64()?;
                let chunk_index = r.u16()?;
                let len = r.u32()? as usize;
                if offset + len as u64 > total_len {
                    return Err(WireError::BadLength {
                        what: "chunk extent",
                        value: offset + len as u64,
                    });
                }
                let data = r.bytes(len)?;
                Packet::Chunk(ChunkPacket {
                    msg_id,
                    seg_index,
                    total_segs,
                    offset,
                    total_len,
                    chunk_index,
                    data,
                })
            }
            PacketKind::Ack => Packet::Ack(AckPacket { msg_id: r.u64()? }),
            PacketKind::SamplePing | PacketKind::SamplePong => {
                let probe_id = r.u64()?;
                let len = r.u32()? as usize;
                let data = r.bytes(len)?;
                let p = SamplePacket { probe_id, data };
                if kind == PacketKind::SamplePing {
                    Packet::SamplePing(p)
                } else {
                    Packet::SamplePong(p)
                }
            }
        };
        Ok(FrameBody::Packet(pkt))
    }
}

impl std::fmt::Debug for PacketFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PacketFrame({}B, parts {:?})", self.wire_len, self.parts)
    }
}

/// A decoded frame body. Aggregates come back as their entries directly
/// (parsed zero-copy from the parts) instead of an opaque re-flattened
/// container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameBody {
    /// Any non-aggregate packet.
    Packet(Packet),
    /// Aggregate container entries, in wire order.
    Aggregate(Vec<AggregateEntry>),
}

/// Bounds-checked cursor over the parts of a [`PacketFrame`] (the
/// scatter-gather analogue of [`crate::codec::Reader`]).
pub struct SgReader<'a> {
    frame: &'a PacketFrame,
    part: usize,
    off: usize,
    consumed: usize,
    copied: usize,
    what: &'static str,
}

impl<'a> SgReader<'a> {
    /// Cursor at the start of `frame`, labelled `what` for diagnostics.
    pub fn new(frame: &'a PacketFrame, what: &'static str) -> Self {
        SgReader {
            frame,
            part: 0,
            off: 0,
            consumed: 0,
            copied: 0,
            what,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.frame.wire_len() - self.consumed
    }

    /// Payload bytes copied so far because they straddled part boundaries.
    pub fn copied(&self) -> usize {
        self.copied
    }

    fn skip_exhausted(&mut self) {
        while let Some(p) = self.frame.part(self.part) {
            if self.off < p.len() {
                break;
            }
            self.part += 1;
            self.off = 0;
        }
    }

    fn short(&self, needed: usize) -> WireError {
        WireError::Truncated {
            what: self.what,
            needed,
            available: self.remaining(),
        }
    }

    fn read_exact(&mut self, dst: &mut [u8]) -> Result<(), WireError> {
        if self.remaining() < dst.len() {
            return Err(self.short(dst.len()));
        }
        let mut filled = 0;
        while filled < dst.len() {
            self.skip_exhausted();
            let p = self.frame.part(self.part).expect("remaining checked");
            let n = (p.len() - self.off).min(dst.len() - filled);
            dst[filled..filled + n].copy_from_slice(&p[self.off..self.off + n]);
            self.off += n;
            self.consumed += n;
            filled += n;
        }
        Ok(())
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read `n` bytes. Zero-copy (a refcounted slice of the current part)
    /// when the range lies within one part; copies — and counts the copy —
    /// only when it straddles parts.
    pub fn bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        if n == 0 {
            return Ok(Bytes::new());
        }
        if self.remaining() < n {
            return Err(self.short(n));
        }
        self.skip_exhausted();
        let p = self.frame.part(self.part).expect("remaining checked");
        if p.len() - self.off >= n {
            let b = p.slice(self.off..self.off + n);
            self.off += n;
            self.consumed += n;
            return Ok(b);
        }
        let mut out = vec![0u8; n];
        self.read_exact(&mut out)?;
        self.copied += n;
        Ok(Bytes::from(out))
    }

    /// CRC-32 of everything after the cursor, without consuming it.
    pub fn crc_of_rest(&self) -> u32 {
        let mut state = crc32_init();
        let mut part = self.part;
        let mut off = self.off;
        while let Some(p) = self.frame.part(part) {
            if off < p.len() {
                state = update(state, &p[off..]);
            }
            part += 1;
            off = 0;
        }
        crc32_finish(state)
    }

    /// Fail if any bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Write the fixed envelope into `head`. `crc` may be a placeholder that
/// is patched after the body is known (see [`patch_crc`]).
fn write_envelope(
    head: &mut BytesMut,
    kind: PacketKind,
    conn_id: ConnId,
    seq: u32,
    payload_len: usize,
    with_crc: bool,
) {
    head.put_u16_le(MAGIC);
    head.put_u8(VERSION);
    head.put_u8(kind as u8);
    head.put_u32_le(conn_id);
    head.put_u32_le(seq);
    head.put_u32_le(payload_len as u32);
    head.put_u32_le(0); // crc, patched below when enabled
    head.put_u16_le(if with_crc { FLAG_CRC } else { 0 });
    head.put_u16_le(0); // reserved
}

/// Patch the envelope's crc field in place (offset 16..20).
fn patch_crc(head: &mut BytesMut, crc: u32) {
    head[16..20].copy_from_slice(&crc.to_le_bytes());
}

/// Streaming CRC over the body: the head's bytes past the envelope, then
/// every body part.
fn crc_over(head: &BytesMut, body: &PartList) -> u32 {
    let mut state = crc32_init();
    state = update(state, &head[ENVELOPE_LEN..]);
    for p in body.iter() {
        state = update(state, p);
    }
    crc32_finish(state)
}

impl Packet {
    /// Vectored encoder: build a [`PacketFrame`] whose parts concatenate
    /// to exactly the bytes [`Packet::encode`] would produce, without
    /// copying any payload — data rides as refcounted slices.
    ///
    /// `head` is the buffer the envelope and body header are written into
    /// (hand a pooled buffer here to keep the hot path allocation-free; it
    /// is cleared first).
    pub fn encode_frame_into(
        &self,
        conn_id: ConnId,
        seq: u32,
        with_crc: bool,
        mut head: BytesMut,
    ) -> PacketFrame {
        head.clear();
        let payload_len = self.wire_len() - ENVELOPE_LEN;
        write_envelope(&mut head, self.kind(), conn_id, seq, payload_len, with_crc);
        let mut body = PartList::new();
        match self {
            Packet::Eager(p) => {
                head.put_u64_le(p.msg_id);
                head.put_u16_le(p.seg_index);
                head.put_u16_le(p.total_segs);
                head.put_u32_le(p.data.len() as u32);
                body.push(p.data.clone());
            }
            Packet::Aggregate(b) => {
                body.push(b.clone());
            }
            Packet::RdvRequest(p) => {
                head.put_u64_le(p.msg_id);
                head.put_u16_le(p.seg_index);
                head.put_u16_le(p.total_segs);
                head.put_u64_le(p.total_len);
            }
            Packet::RdvAck(p) => {
                head.put_u64_le(p.msg_id);
                head.put_u16_le(p.seg_index);
            }
            Packet::Chunk(p) => {
                head.put_u64_le(p.msg_id);
                head.put_u16_le(p.seg_index);
                head.put_u16_le(p.total_segs);
                head.put_u64_le(p.offset);
                head.put_u64_le(p.total_len);
                head.put_u16_le(p.chunk_index);
                head.put_u32_le(p.data.len() as u32);
                body.push(p.data.clone());
            }
            Packet::Ack(p) => {
                head.put_u64_le(p.msg_id);
            }
            Packet::SamplePing(p) | Packet::SamplePong(p) => {
                head.put_u64_le(p.probe_id);
                head.put_u32_le(p.data.len() as u32);
                body.push(p.data.clone());
            }
        }
        if with_crc {
            let crc = crc_over(&head, &body);
            patch_crc(&mut head, crc);
        }
        let frame = PacketFrame::from_parts(head.freeze(), body);
        debug_assert_eq!(frame.wire_len(), self.wire_len());
        frame
    }

    /// Vectored encoder with a fresh head buffer (see
    /// [`Packet::encode_frame_into`]).
    pub fn encode_frame(&self, conn_id: ConnId, seq: u32, with_crc: bool) -> PacketFrame {
        let head_len = ENVELOPE_LEN + 40;
        self.encode_frame_into(conn_id, seq, with_crc, BytesMut::with_capacity(head_len))
    }
}

/// Build a frame around pre-encoded body parts (the aggregate path: the
/// builder produces interleaved staged runs and zero-copy payload slices;
/// this wraps them in an envelope without re-encoding anything).
pub fn encode_parts_frame(
    kind: PacketKind,
    conn_id: ConnId,
    seq: u32,
    with_crc: bool,
    body: PartList,
    mut head: BytesMut,
) -> PacketFrame {
    head.clear();
    write_envelope(&mut head, kind, conn_id, seq, body.total_len(), with_crc);
    if with_crc {
        let crc = crc_over(&head, &body);
        patch_crc(&mut head, crc);
    }
    PacketFrame::from_parts(head.freeze(), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{AckPacket, ChunkPacket, EagerPacket, SamplePacket};

    fn eager(data: &[u8]) -> Packet {
        Packet::Eager(EagerPacket {
            msg_id: 7,
            seg_index: 1,
            total_segs: 3,
            data: Bytes::copy_from_slice(data),
        })
    }

    #[test]
    fn empty_frame_has_no_phantom_bytes() {
        let f = PacketFrame::empty();
        assert_eq!(f.wire_len(), 0);
        assert_eq!(f.num_parts(), 0);
        assert!(f.is_empty());
        assert_eq!(f.to_bytes().len(), 0);
    }

    #[test]
    fn vectored_matches_flat_for_all_kinds() {
        let pkts = vec![
            eager(b"hello"),
            eager(b""),
            Packet::Ack(AckPacket { msg_id: 12 }),
            Packet::RdvRequest(crate::header::RdvRequest {
                msg_id: 5,
                seg_index: 2,
                total_segs: 4,
                total_len: 1 << 20,
            }),
            Packet::RdvAck(crate::header::RdvAck {
                msg_id: 5,
                seg_index: 2,
            }),
            Packet::Chunk(ChunkPacket {
                msg_id: 9,
                seg_index: 0,
                total_segs: 1,
                offset: 512,
                total_len: 4096,
                chunk_index: 1,
                data: Bytes::from(vec![0xEE; 256]),
            }),
            Packet::SamplePing(SamplePacket {
                probe_id: 3,
                data: Bytes::from(vec![1; 64]),
            }),
        ];
        for pkt in pkts {
            for crc in [false, true] {
                let flat = pkt.encode(11, 42, crc);
                let frame = pkt.encode_frame(11, 42, crc);
                assert_eq!(frame.wire_len(), flat.len());
                assert_eq!(&frame.to_bytes()[..], &flat[..], "{pkt:?} crc={crc}");
            }
        }
    }

    #[test]
    fn payload_part_shares_storage_with_source() {
        let data = Bytes::from(vec![0xAB; 1024]);
        let pkt = Packet::Eager(EagerPacket {
            msg_id: 1,
            seg_index: 0,
            total_segs: 1,
            data: data.clone(),
        });
        let frame = pkt.encode_frame(0, 0, true);
        assert_eq!(frame.num_parts(), 2);
        let payload = frame.part(1).unwrap();
        assert_eq!(payload.as_slice().as_ptr(), data.as_slice().as_ptr());
    }

    #[test]
    fn decode_yields_zero_copy_slices() {
        let pkt = eager(b"zero copy payload");
        let frame = pkt.encode_frame(2, 3, true);
        let (env, body, copied) = frame.decode().unwrap();
        assert_eq!(env.conn_id, 2);
        assert_eq!(env.seq, 3);
        assert!(env.crc_checked);
        assert_eq!(copied, 0, "aligned frame must decode without copying");
        assert_eq!(body, FrameBody::Packet(pkt));
    }

    #[test]
    fn decode_single_part_wire_matches_flat_decode() {
        let pkt = eager(b"via the flat path");
        let flat = pkt.encode(4, 5, true);
        let frame = PacketFrame::from_wire(flat.clone());
        let (env, body, copied) = frame.decode().unwrap();
        let (env2, pkt2) = Packet::decode(&flat).unwrap();
        assert_eq!(env, env2);
        assert_eq!(body, FrameBody::Packet(pkt2));
        assert_eq!(copied, 0, "single-part frames never straddle");
    }

    #[test]
    fn decode_detects_corruption() {
        let pkt = eager(&[7u8; 64]);
        let frame = pkt.encode_frame(0, 0, true);
        let payload = frame.part(1).unwrap();
        let mut raw = BytesMut::new();
        raw.extend_from_slice(payload);
        raw[10] ^= 0x01;
        let mut bad = frame.clone();
        bad.replace_part(1, raw.freeze());
        assert!(matches!(bad.decode(), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn straddling_read_copies_and_counts() {
        // Hand-build a frame whose payload straddles two parts.
        let pkt = eager(b"abcdefgh");
        let flat = pkt.encode(0, 0, false);
        let head = flat.slice(..flat.len() - 4);
        let mut body = PartList::new();
        body.push(flat.slice(flat.len() - 4..));
        let frame = PacketFrame::from_parts(head, body);
        assert_eq!(frame.wire_len(), flat.len());
        let (_, body, copied) = frame.decode().unwrap();
        assert_eq!(copied, 8, "straddling payload must be copied and counted");
        let FrameBody::Packet(Packet::Eager(e)) = body else {
            panic!("wrong body")
        };
        assert_eq!(&e.data[..], b"abcdefgh");
    }

    #[test]
    fn locate_and_replace_part() {
        let pkt = eager(b"xyzw");
        let frame = pkt.encode_frame(0, 0, false);
        let head_len = frame.part(0).unwrap().len();
        assert_eq!(frame.locate(0), Some((0, 0)));
        assert_eq!(frame.locate(head_len), Some((1, 0)));
        assert_eq!(frame.locate(head_len + 3), Some((1, 3)));
        assert_eq!(frame.locate(frame.wire_len()), None);
    }

    #[test]
    fn part_list_spills_past_inline() {
        let mut l = PartList::new();
        for i in 0..INLINE_PARTS + 3 {
            l.push(Bytes::from(vec![i as u8; i + 1]));
        }
        assert_eq!(l.len(), INLINE_PARTS + 3);
        for (i, p) in l.iter().enumerate() {
            assert_eq!(p.len(), i + 1);
        }
        assert_eq!(l.total_len(), (1..=INLINE_PARTS + 3).sum::<usize>());
    }

    #[test]
    fn empty_parts_are_skipped() {
        let mut l = PartList::new();
        l.push(Bytes::new());
        l.push(Bytes::from_static(b"x"));
        l.push(Bytes::new());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn truncated_frame_rejected() {
        let pkt = eager(&[1u8; 32]);
        let flat = pkt.encode(0, 0, true);
        for cut in [0, 5, ENVELOPE_LEN - 1, ENVELOPE_LEN + 3, flat.len() - 1] {
            let f = PacketFrame::from_wire(flat.slice(..cut));
            assert!(f.decode().is_err(), "cut at {cut} must fail");
        }
    }
}
