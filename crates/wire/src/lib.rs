//! # nmad-wire — the NewMadeleine wire format
//!
//! NewMadeleine's optimizing schedulers rewrite application requests into
//! *packets*: small segments can be **aggregated** into one physical packet
//! even when they belong to different logical channels, and large segments
//! can be **split** into chunks sent over different rails and reassembled on
//! the receive side (paper §2, §4). This crate defines those packets and the
//! machinery around them:
//!
//! * [`header`] — the common packet envelope and the per-kind headers
//!   (eager, aggregate, rendezvous request/ack, chunk, ack, sampling probes);
//! * [`codec`] — a small safe reader/writer over byte buffers;
//! * [`checksum`] — CRC-32 (IEEE) for payload integrity;
//! * [`frame`] — scatter-gather packet frames: the zero-copy iovec
//!   representation of a packet (small owned head + refcounted payload
//!   slices) used on every hot path;
//! * [`agg`] — building and parsing aggregation containers;
//! * [`split`] — chunk planning for multi-rail splitting (iso and ratio
//!   driven), with covering/non-overlap invariants;
//! * [`reassembly`] — out-of-order, multi-rail reassembly of chunked
//!   messages and multi-segment eager messages.
//!
//! Everything is pure data manipulation — no I/O — so the exact same code
//! runs under the discrete-event simulator and on the real threaded
//! transport.

#![warn(missing_docs)]
// Copy-regression gate: the wire crate is the hot path, so accidental
// owned conversions and clones fail the build outright.
#![deny(clippy::unnecessary_to_owned, clippy::redundant_clone)]

pub mod agg;
pub mod checksum;
pub mod codec;
pub mod error;
pub mod frame;
pub mod header;
pub mod reassembly;
pub mod split;

pub use agg::{AggregateBuilder, AggregateEntry, AggregateParts};
pub use error::WireError;
pub use frame::{FrameBody, PacketFrame, PartList, SgReader};
pub use header::{
    AckPacket, ChunkPacket, EagerPacket, Envelope, Packet, PacketKind, RdvAck, RdvRequest,
    SamplePacket,
};
pub use reassembly::{MessageAssembly, Reassembler};
pub use split::{ChunkSpec, SplitPlan};

/// Message identifier: unique per (sender, connection) message.
pub type MsgId = u64;
/// Connection identifier.
pub type ConnId = u32;
