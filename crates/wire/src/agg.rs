//! Aggregation containers.
//!
//! The paper's key small-message optimization (§3.3): when several segments
//! are waiting while a NIC is busy, the optimizing scheduler copies them
//! into one contiguous physical packet — "opportunistic aggregation". The
//! segments may belong to different messages and even different logical
//! channels (§4). The container layout after the packet envelope is:
//!
//! ```text
//! count: u16
//! repeated count times:
//!   msg_id:     u64
//!   seg_index:  u16
//!   total_segs: u16
//!   len:        u32
//!   data:       len bytes
//! ```

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use crate::frame::PartList;
use crate::header::Packet;
use crate::MsgId;

/// Per-entry byte overhead inside an aggregate container.
pub const ENTRY_OVERHEAD: usize = 4 + 8 + 2 + 2 + 4;
/// Fixed container overhead (the count field).
pub const CONTAINER_OVERHEAD: usize = 2;

/// One aggregated segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateEntry {
    /// Logical channel (connection) the segment belongs to. Aggregation
    /// works across channels (paper §4), so every entry carries its own.
    pub conn_id: u32,
    /// Message the segment belongs to.
    pub msg_id: MsgId,
    /// Segment index within its message.
    pub seg_index: u16,
    /// Total segments of that message.
    pub total_segs: u16,
    /// Segment payload.
    pub data: Bytes,
}

/// Incrementally builds an aggregate container.
#[derive(Debug, Default)]
pub struct AggregateBuilder {
    entries: Vec<AggregateEntry>,
    payload_bytes: usize,
}

impl AggregateBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a segment to the container.
    pub fn push(&mut self, entry: AggregateEntry) {
        self.payload_bytes += entry.data.len();
        self.entries.push(entry);
    }

    /// Number of segments queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no segments are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Application payload bytes queued (excluding per-entry headers).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Wire size of the container this builder would produce.
    pub fn container_len(&self) -> usize {
        CONTAINER_OVERHEAD + self.entries.len() * ENTRY_OVERHEAD + self.payload_bytes
    }

    /// Bytes the host CPU must copy to stage this container (the memcpy
    /// cost the paper calls "very low"): all segment payloads.
    pub fn copy_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Finish into an opaque [`Packet::Aggregate`] body.
    ///
    /// Panics if empty: an empty aggregate is always a strategy bug.
    pub fn finish(self) -> Packet {
        assert!(!self.entries.is_empty(), "empty aggregate container");
        assert!(
            self.entries.len() <= u16::MAX as usize,
            "too many entries in one aggregate"
        );
        let mut w = Writer::with_capacity(self.container_len());
        w.u16(self.entries.len() as u16);
        for e in &self.entries {
            w.u32(e.conn_id);
            w.u64(e.msg_id);
            w.u16(e.seg_index);
            w.u16(e.total_segs);
            w.u32(e.data.len() as u32);
            w.bytes(&e.data);
        }
        Packet::Aggregate(w.finish())
    }

    /// Finish into scatter-gather body parts instead of a flat container.
    ///
    /// Entries whose payload is below `stage_threshold` (the PIO regime —
    /// the copy the paper calls "very low" cost, §3.1) are staged into
    /// `slab` together with every entry header; entries at or above it
    /// ride as refcounted zero-copy slices between staged runs. The wire
    /// image is identical to [`AggregateBuilder::finish`] — only the copy
    /// pattern differs.
    ///
    /// `slab` should come from a buffer pool (it is cleared first). The
    /// returned [`AggregateParts`] reports how many payload bytes were
    /// staged so the engine can charge exactly that memcpy cost.
    ///
    /// Panics if empty, like [`AggregateBuilder::finish`].
    pub fn finish_parts(self, stage_threshold: usize, mut slab: BytesMut) -> AggregateParts {
        assert!(!self.entries.is_empty(), "empty aggregate container");
        assert!(
            self.entries.len() <= u16::MAX as usize,
            "too many entries in one aggregate"
        );
        let container_len = self.container_len();
        slab.clear();
        let mut parts = PartList::new();
        let mut staged_bytes = 0usize;
        let mut zero_copy_bytes = 0usize;
        // Offsets into the (single) slab allocation where each staged run
        // ends; the runs become zero-copy slices of the frozen slab.
        let mut run_start = 0usize;
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut pending: Vec<Bytes> = Vec::new();
        slab.put_u16_le(self.entries.len() as u16);
        for e in &self.entries {
            slab.put_u32_le(e.conn_id);
            slab.put_u64_le(e.msg_id);
            slab.put_u16_le(e.seg_index);
            slab.put_u16_le(e.total_segs);
            slab.put_u32_le(e.data.len() as u32);
            if e.data.len() < stage_threshold {
                slab.put_slice(&e.data);
                staged_bytes += e.data.len();
            } else {
                // Cut the staged run here; the payload becomes its own
                // part and the next run continues in the same slab.
                runs.push((run_start, slab.len()));
                run_start = slab.len();
                pending.push(e.data.clone());
                zero_copy_bytes += e.data.len();
            }
        }
        runs.push((run_start, slab.len()));
        let slab = slab.freeze();
        let mut pending = pending.into_iter();
        for (i, &(s, e)) in runs.iter().enumerate() {
            if e > s {
                parts.push(slab.slice(s..e));
            }
            if i + 1 < runs.len() {
                parts.push(pending.next().expect("one payload per cut"));
            }
        }
        debug_assert_eq!(parts.total_len(), container_len);
        AggregateParts {
            parts,
            staged_bytes,
            zero_copy_bytes,
            container_len,
            slab,
        }
    }
}

/// Result of [`AggregateBuilder::finish_parts`].
#[derive(Debug)]
pub struct AggregateParts {
    /// Body parts in wire order (staged runs interleaved with zero-copy
    /// payload slices).
    pub parts: PartList,
    /// Payload bytes copied into the staging slab (sub-threshold entries).
    pub staged_bytes: usize,
    /// Payload bytes riding as refcounted slices (no copy).
    pub zero_copy_bytes: usize,
    /// Total container size on the wire.
    pub container_len: usize,
    /// The frozen staging slab itself. The staged runs in `parts` are
    /// slices of this allocation; holding it here lets the engine hand
    /// the allocation back to its buffer pool once the frame completes
    /// instead of abandoning the slab after every aggregate.
    pub slab: Bytes,
}

/// Parse an aggregate container body back into its entries.
pub fn parse_aggregate(body: &[u8]) -> Result<Vec<AggregateEntry>, WireError> {
    let mut r = Reader::new(body, "aggregate container");
    let count = r.u16()? as usize;
    if count == 0 {
        return Err(WireError::BadLength {
            what: "aggregate count",
            value: 0,
        });
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let conn_id = r.u32()?;
        let msg_id = r.u64()?;
        let seg_index = r.u16()?;
        let total_segs = r.u16()?;
        let len = r.u32()? as usize;
        let data = r.bytes(len)?;
        entries.push(AggregateEntry {
            conn_id,
            msg_id,
            seg_index,
            total_segs,
            data,
        });
    }
    r.expect_end()?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(msg_id: u64, seg: u16, total: u16, data: &[u8]) -> AggregateEntry {
        AggregateEntry {
            conn_id: 0,
            msg_id,
            seg_index: seg,
            total_segs: total,
            data: Bytes::copy_from_slice(data),
        }
    }

    #[test]
    fn roundtrip_multiple_messages() {
        let mut b = AggregateBuilder::new();
        b.push(entry(1, 0, 2, b"first"));
        b.push(entry(1, 1, 2, b"second"));
        b.push(entry(9, 0, 1, b"other message"));
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload_bytes(), 5 + 6 + 13);
        let expected_len = b.container_len();

        let pkt = b.finish();
        let Packet::Aggregate(body) = &pkt else {
            panic!("wrong kind")
        };
        assert_eq!(body.len(), expected_len);
        let entries = parse_aggregate(body).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].data, Bytes::from_static(b"first"));
        assert_eq!(entries[2].msg_id, 9);
    }

    #[test]
    fn roundtrip_through_full_packet_encode() {
        let mut b = AggregateBuilder::new();
        b.push(entry(4, 0, 1, &[0xCC; 100]));
        let pkt = b.finish();
        let buf = pkt.encode(3, 11, true);
        let (_, decoded) = Packet::decode(&buf).unwrap();
        let Packet::Aggregate(body) = decoded else {
            panic!("wrong kind")
        };
        let entries = parse_aggregate(&body).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].data.len(), 100);
    }

    #[test]
    fn zero_length_segment_allowed() {
        let mut b = AggregateBuilder::new();
        b.push(entry(1, 0, 1, b""));
        b.push(entry(2, 0, 1, b"x"));
        let Packet::Aggregate(body) = b.finish() else {
            panic!()
        };
        let entries = parse_aggregate(&body).unwrap();
        assert_eq!(entries[0].data.len(), 0);
        assert_eq!(entries[1].data.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty aggregate")]
    fn empty_container_panics() {
        AggregateBuilder::new().finish();
    }

    #[test]
    fn zero_count_rejected_on_parse() {
        let mut w = Writer::new();
        w.u16(0);
        let body = w.finish();
        assert!(matches!(
            parse_aggregate(&body),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn truncated_entry_rejected() {
        let mut b = AggregateBuilder::new();
        b.push(entry(1, 0, 1, b"payload"));
        let Packet::Aggregate(body) = b.finish() else {
            panic!()
        };
        for cut in [1, 3, 10, body.len() - 1] {
            assert!(parse_aggregate(&body[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut b = AggregateBuilder::new();
        b.push(entry(1, 0, 1, b"p"));
        let Packet::Aggregate(body) = b.finish() else {
            panic!()
        };
        let mut extended = body.to_vec();
        extended.push(0xFF);
        assert!(matches!(
            parse_aggregate(&extended),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn finish_parts_matches_flat_wire_image() {
        let big = vec![0xBB; 512];
        let mut flat = AggregateBuilder::new();
        let mut sg = AggregateBuilder::new();
        for b in [&mut flat, &mut sg] {
            b.push(entry(1, 0, 2, b"small one"));
            b.push(entry(2, 0, 1, &big));
            b.push(entry(1, 1, 2, b"small two"));
            b.push(entry(3, 0, 1, &big));
        }
        let Packet::Aggregate(body) = flat.finish() else {
            panic!()
        };
        // Threshold 256: the two big entries ride zero-copy.
        let parts = sg.finish_parts(256, BytesMut::new());
        assert_eq!(parts.staged_bytes, 9 + 9);
        assert_eq!(parts.zero_copy_bytes, 1024);
        assert_eq!(parts.container_len, body.len());
        let mut joined = Vec::new();
        for p in parts.parts.iter() {
            joined.extend_from_slice(p);
        }
        assert_eq!(joined, body.to_vec(), "wire images must be identical");
        // Interleaving: run / big / run / big (no trailing run — the last
        // entry is zero-copy... actually last entry is big, so runs end
        // with an empty tail that is skipped).
        assert!(parts.parts.len() >= 4);
    }

    #[test]
    fn finish_parts_all_small_is_one_staged_run() {
        let mut b = AggregateBuilder::new();
        b.push(entry(1, 0, 1, b"aa"));
        b.push(entry(2, 0, 1, b"bb"));
        let parts = b.finish_parts(4096, BytesMut::new());
        assert_eq!(parts.parts.len(), 1, "everything staged in one slab run");
        assert_eq!(parts.staged_bytes, 4);
        assert_eq!(parts.zero_copy_bytes, 0);
    }

    #[test]
    fn finish_parts_zero_copy_slices_share_storage() {
        let big = Bytes::from(vec![0xCD; 300]);
        let mut b = AggregateBuilder::new();
        b.push(AggregateEntry {
            conn_id: 0,
            msg_id: 1,
            seg_index: 0,
            total_segs: 1,
            data: big.clone(),
        });
        let parts = b.finish_parts(128, BytesMut::new());
        let payload = parts
            .parts
            .iter()
            .find(|p| p.len() == 300)
            .expect("payload part");
        assert_eq!(payload.as_slice().as_ptr(), big.as_slice().as_ptr());
    }

    #[test]
    fn overhead_constants_match_layout() {
        let mut b = AggregateBuilder::new();
        b.push(entry(1, 0, 1, b"abc"));
        let Packet::Aggregate(body) = b.finish() else {
            panic!()
        };
        assert_eq!(body.len(), CONTAINER_OVERHEAD + ENTRY_OVERHEAD + 3);
    }
}
