//! Chunk planning for multi-rail message splitting.
//!
//! Section 3.4 of the paper: large messages are "stripped into packs large
//! enough to avoid the transfer of the different chunks with a PIO
//! operation", with per-rail chunk sizes derived from sampling so that the
//! per-chunk transfer times are equal. A [`SplitPlan`] is the pure-data
//! outcome of that decision: an ordered list of `(offset, len, rail)`
//! chunk specifications that exactly covers the message.

use crate::error::WireError;

/// One planned chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Byte offset within the message payload.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
    /// Rail index the chunk is planned onto.
    pub rail: usize,
}

/// An ordered set of chunks covering a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitPlan {
    total_len: u64,
    chunks: Vec<ChunkSpec>,
}

impl SplitPlan {
    /// Plan a split of `total_len` bytes across rails with the given
    /// weights (one per rail, need not be normalized; rails weighted 0 get
    /// nothing). Chunks smaller than `min_chunk` are folded into their
    /// neighbour so no chunk falls back into the PIO regime.
    ///
    /// Returns a single-chunk plan on the heaviest rail when `total_len`
    /// itself is below `2 * min_chunk` — splitting would create a PIO-sized
    /// fragment, exactly what §3.4 avoids.
    pub fn by_ratio(total_len: u64, weights: &[f64], min_chunk: u64) -> SplitPlan {
        assert!(!weights.is_empty(), "need at least one rail weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative: {weights:?}"
        );
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "at least one weight must be positive");

        let heaviest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();

        if total_len < 2 * min_chunk.max(1) {
            return SplitPlan {
                total_len,
                chunks: if total_len == 0 {
                    Vec::new()
                } else {
                    vec![ChunkSpec {
                        offset: 0,
                        len: total_len,
                        rail: heaviest,
                    }]
                },
            };
        }

        // First pass: proportional shares, floored.
        let mut lens: Vec<u64> = weights
            .iter()
            .map(|w| ((w / sum) * total_len as f64).floor() as u64)
            .collect();
        // Distribute the rounding remainder to the heaviest rail.
        let assigned: u64 = lens.iter().sum();
        lens[heaviest] += total_len - assigned;

        // Fold sub-minimum shares into the heaviest rail so no chunk is
        // PIO-sized (rails with zero weight simply stay empty).
        for i in 0..lens.len() {
            if i != heaviest && lens[i] > 0 && lens[i] < min_chunk {
                lens[heaviest] += lens[i];
                lens[i] = 0;
            }
        }

        let mut chunks = Vec::new();
        let mut offset = 0u64;
        for (rail, &len) in lens.iter().enumerate() {
            if len == 0 {
                continue;
            }
            chunks.push(ChunkSpec { offset, len, rail });
            offset += len;
        }
        debug_assert_eq!(offset, total_len);
        SplitPlan { total_len, chunks }
    }

    /// Even split across `n_rails` (the "iso-split" reference of Fig. 7).
    pub fn iso(total_len: u64, n_rails: usize, min_chunk: u64) -> SplitPlan {
        assert!(n_rails > 0);
        SplitPlan::by_ratio(total_len, &vec![1.0; n_rails], min_chunk)
    }

    /// A plan that keeps the whole message on one rail.
    pub fn single(total_len: u64, rail: usize) -> SplitPlan {
        SplitPlan {
            total_len,
            chunks: if total_len == 0 {
                Vec::new()
            } else {
                vec![ChunkSpec {
                    offset: 0,
                    len: total_len,
                    rail,
                }]
            },
        }
    }

    /// Total message length covered.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Planned chunks in offset order.
    pub fn chunks(&self) -> &[ChunkSpec] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when the plan covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Bytes planned onto `rail`.
    pub fn bytes_on_rail(&self, rail: usize) -> u64 {
        self.chunks
            .iter()
            .filter(|c| c.rail == rail)
            .map(|c| c.len)
            .sum()
    }

    /// Verify the covering invariant: chunks are sorted, contiguous,
    /// non-overlapping, and sum to `total_len`. Returns the violation as a
    /// [`WireError::BadLength`] for uniform error plumbing.
    pub fn validate(&self) -> Result<(), WireError> {
        let mut expected_offset = 0u64;
        for c in &self.chunks {
            if c.offset != expected_offset {
                return Err(WireError::BadLength {
                    what: "chunk offset",
                    value: c.offset,
                });
            }
            if c.len == 0 {
                return Err(WireError::BadLength {
                    what: "chunk length",
                    value: 0,
                });
            }
            expected_offset += c.len;
        }
        if expected_offset != self.total_len {
            return Err(WireError::BadLength {
                what: "plan coverage",
                value: expected_offset,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_split_shapes() {
        // Paper platform: Myri 1202, Quadrics 851 -> ~58.6% / 41.4%.
        let plan = SplitPlan::by_ratio(8 << 20, &[1202.0, 851.0], 8 * 1024);
        plan.validate().unwrap();
        assert_eq!(plan.len(), 2);
        let myri = plan.bytes_on_rail(0) as f64;
        let quad = plan.bytes_on_rail(1) as f64;
        let frac = myri / (myri + quad);
        assert!((frac - 1202.0 / 2053.0).abs() < 0.001, "fraction {frac}");
    }

    #[test]
    fn iso_split_is_even() {
        let plan = SplitPlan::iso(1 << 20, 2, 8 * 1024);
        plan.validate().unwrap();
        let a = plan.bytes_on_rail(0);
        let b = plan.bytes_on_rail(1);
        assert!(a.abs_diff(b) <= 1, "iso halves differ: {a} vs {b}");
        assert_eq!(a + b, 1 << 20);
    }

    #[test]
    fn small_message_stays_whole_on_heaviest_rail() {
        let plan = SplitPlan::by_ratio(10_000, &[1202.0, 851.0], 8 * 1024);
        plan.validate().unwrap();
        assert_eq!(plan.len(), 1, "below 2*min_chunk must not split");
        assert_eq!(plan.chunks()[0].rail, 0, "heaviest rail takes it");
        assert_eq!(plan.bytes_on_rail(0), 10_000);
    }

    #[test]
    fn sub_minimum_share_folds_into_heaviest() {
        // Rail 1 weighted so lightly its share would be < min_chunk.
        let plan = SplitPlan::by_ratio(100_000, &[1.0, 0.01], 8 * 1024);
        plan.validate().unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.bytes_on_rail(0), 100_000);
        assert_eq!(plan.bytes_on_rail(1), 0);
    }

    #[test]
    fn zero_weight_rail_gets_nothing() {
        let plan = SplitPlan::by_ratio(1 << 20, &[1.0, 0.0, 1.0], 1024);
        plan.validate().unwrap();
        assert_eq!(plan.bytes_on_rail(1), 0);
        assert!(plan.bytes_on_rail(0) > 0 && plan.bytes_on_rail(2) > 0);
    }

    #[test]
    fn zero_length_plan_is_empty() {
        let plan = SplitPlan::by_ratio(0, &[1.0, 1.0], 1024);
        plan.validate().unwrap();
        assert!(plan.is_empty());
        let single = SplitPlan::single(0, 0);
        assert!(single.is_empty());
        single.validate().unwrap();
    }

    #[test]
    fn single_plan_validates() {
        let plan = SplitPlan::single(4096, 1);
        plan.validate().unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.bytes_on_rail(1), 4096);
    }

    #[test]
    fn three_rail_ratio_covers() {
        let plan = SplitPlan::by_ratio(3_000_000, &[1202.0, 851.0, 320.0], 8 * 1024);
        plan.validate().unwrap();
        assert_eq!(plan.len(), 3);
        let total: u64 = (0..3).map(|r| plan.bytes_on_rail(r)).sum();
        assert_eq!(total, 3_000_000);
    }

    #[test]
    fn validate_detects_gap() {
        let plan = SplitPlan {
            total_len: 100,
            chunks: vec![
                ChunkSpec {
                    offset: 0,
                    len: 40,
                    rail: 0,
                },
                ChunkSpec {
                    offset: 50, // gap at [40, 50)
                    len: 50,
                    rail: 1,
                },
            ],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_detects_short_coverage() {
        let plan = SplitPlan {
            total_len: 100,
            chunks: vec![ChunkSpec {
                offset: 0,
                len: 40,
                rail: 0,
            }],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "weights must be finite")]
    fn negative_weight_panics() {
        SplitPlan::by_ratio(100, &[1.0, -1.0], 1);
    }

    #[test]
    #[should_panic(expected = "at least one weight must be positive")]
    fn all_zero_weights_panic() {
        SplitPlan::by_ratio(100, &[0.0, 0.0], 1);
    }
}
