//! Minimal safe reader/writer for the wire format.
//!
//! All integers are little-endian. The reader returns
//! [`WireError::Truncated`] instead of panicking on short input, which the
//! failure-injection tests rely on.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::WireError;

/// A bounds-checked reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Name of the structure being decoded, for error messages.
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Create a reader labelled `what` for diagnostics.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what: self.what,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read `n` raw bytes as an owned [`Bytes`].
    pub fn bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }

    /// Read all remaining bytes.
    pub fn rest(&mut self) -> Bytes {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        Bytes::copy_from_slice(s)
    }

    /// Fail if any bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// A growable writer. Thin veneer over [`BytesMut`] kept symmetric with
/// [`Reader`] so encode/decode code reads the same way.
pub struct Writer {
    buf: BytesMut,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// Writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(n),
        }
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.bytes(b"tail");
        let buf = w.finish();

        let mut r = Reader::new(&buf, "test");
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&r.rest()[..], b"tail");
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_reports_context() {
        let mut r = Reader::new(&[1, 2], "short thing");
        assert_eq!(r.u8().unwrap(), 1);
        let err = r.u32().unwrap_err();
        match err {
            WireError::Truncated {
                what,
                needed,
                available,
            } => {
                assert_eq!(what, "short thing");
                assert_eq!(needed, 4);
                assert_eq!(available, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[0; 3], "x");
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(3)));
    }

    #[test]
    fn bytes_reads_exact() {
        let mut r = Reader::new(b"abcdef", "x");
        assert_eq!(&r.bytes(3).unwrap()[..], b"abc");
        assert_eq!(r.remaining(), 3);
        assert!(r.bytes(4).is_err());
    }

    #[test]
    fn little_endian_layout() {
        let mut w = Writer::new();
        w.u16(0x0102);
        assert_eq!(&w.finish()[..], &[0x02, 0x01]);
    }
}
