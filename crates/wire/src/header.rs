//! Packet envelope and per-kind headers.
//!
//! Every physical packet starts with a fixed 24-byte [`Envelope`] followed
//! by a kind-specific header and payload. Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//!      0     2  magic 0x4D4E ("NM")
//!      2     1  version (currently 1)
//!      3     1  kind (PacketKind discriminant)
//!      4     4  conn_id
//!      8     4  seq        per-(connection, rail) send sequence
//!     12     4  payload_len  bytes after the envelope
//!     16     4  crc32 of the payload (0 when flags bit 0 is clear)
//!     20     2  flags      bit 0: crc present
//!     22     2  reserved
//! ```

use bytes::Bytes;

use crate::checksum::crc32;
use crate::codec::{Reader, Writer};
use crate::error::WireError;
use crate::{ConnId, MsgId};

/// Wire magic: "NM" little-endian.
pub const MAGIC: u16 = 0x4D4E;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Size of the fixed envelope in bytes.
pub const ENVELOPE_LEN: usize = 24;
/// Flag bit: payload CRC present and must be verified.
pub const FLAG_CRC: u16 = 0b1;

/// Packet kind discriminants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketKind {
    /// Single segment of a (possibly multi-segment) small message.
    Eager = 1,
    /// Several segments aggregated into one physical packet.
    Aggregate = 2,
    /// Rendezvous request (large message announcement).
    RdvRequest = 3,
    /// Rendezvous grant.
    RdvAck = 4,
    /// One chunk of a split large message.
    Chunk = 5,
    /// Message-level acknowledgement (used by retry logic and tests).
    Ack = 6,
    /// Sampling probe request (init-time network sampling, paper §3.4).
    SamplePing = 7,
    /// Sampling probe reply.
    SamplePong = 8,
}

impl PacketKind {
    pub(crate) fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => PacketKind::Eager,
            2 => PacketKind::Aggregate,
            3 => PacketKind::RdvRequest,
            4 => PacketKind::RdvAck,
            5 => PacketKind::Chunk,
            6 => PacketKind::Ack,
            7 => PacketKind::SamplePing,
            8 => PacketKind::SamplePong,
            other => return Err(WireError::BadKind(other)),
        })
    }
}

/// The fixed per-packet envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Connection the packet belongs to.
    pub conn_id: ConnId,
    /// Per-(connection, rail) send sequence number.
    pub seq: u32,
    /// Packet kind.
    pub kind: PacketKind,
    /// Whether the payload CRC was present and verified on decode.
    pub crc_checked: bool,
}

/// One segment of a small message, sent eagerly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EagerPacket {
    /// Message this segment belongs to.
    pub msg_id: MsgId,
    /// Index of this segment within the message.
    pub seg_index: u16,
    /// Total number of segments in the message (receiver completion test).
    pub total_segs: u16,
    /// Segment payload.
    pub data: Bytes,
}

/// Rendezvous request: announces a large *segment* of a message. Chunking
/// and rendezvous operate per segment — the schedulable unit of the paper's
/// strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RdvRequest {
    /// Message the segment belongs to.
    pub msg_id: MsgId,
    /// Segment index within the message.
    pub seg_index: u16,
    /// Total segments in the message.
    pub total_segs: u16,
    /// Payload length of this segment.
    pub total_len: u64,
}

/// Rendezvous grant: the receiver is ready (buffers posted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RdvAck {
    /// Message being granted.
    pub msg_id: MsgId,
    /// Segment being granted.
    pub seg_index: u16,
}

/// One chunk of a split segment, possibly arriving over any rail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkPacket {
    /// Message this chunk belongs to.
    pub msg_id: MsgId,
    /// Segment this chunk belongs to.
    pub seg_index: u16,
    /// Total segments in the message (lets any chunk initialize the
    /// receiver's per-message state).
    pub total_segs: u16,
    /// Byte offset of this chunk within the segment payload.
    pub offset: u64,
    /// Total segment payload length (repeated in every chunk so any
    /// arrival order can initialize the reassembly buffer).
    pub total_len: u64,
    /// Chunk index (diagnostics only; offsets are authoritative).
    pub chunk_index: u16,
    /// Chunk payload.
    pub data: Bytes,
}

/// Message-level acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckPacket {
    /// Acknowledged message.
    pub msg_id: MsgId,
}

/// Sampling probe (ping or pong) used by init-time network sampling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplePacket {
    /// Probe identifier (echoed back in the pong).
    pub probe_id: u64,
    /// Probe payload (its size is the sampled size).
    pub data: Bytes,
}

/// A decoded packet body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet {
    /// See [`EagerPacket`].
    Eager(EagerPacket),
    /// Aggregated segments; see [`crate::agg`]. The payload is kept opaque
    /// here and parsed by [`crate::agg::parse_aggregate`].
    Aggregate(Bytes),
    /// See [`RdvRequest`].
    RdvRequest(RdvRequest),
    /// See [`RdvAck`].
    RdvAck(RdvAck),
    /// See [`ChunkPacket`].
    Chunk(ChunkPacket),
    /// See [`AckPacket`].
    Ack(AckPacket),
    /// See [`SamplePacket`].
    SamplePing(SamplePacket),
    /// See [`SamplePacket`].
    SamplePong(SamplePacket),
}

impl Packet {
    /// Kind discriminant of this body.
    pub fn kind(&self) -> PacketKind {
        match self {
            Packet::Eager(_) => PacketKind::Eager,
            Packet::Aggregate(_) => PacketKind::Aggregate,
            Packet::RdvRequest(_) => PacketKind::RdvRequest,
            Packet::RdvAck(_) => PacketKind::RdvAck,
            Packet::Chunk(_) => PacketKind::Chunk,
            Packet::Ack(_) => PacketKind::Ack,
            Packet::SamplePing(_) => PacketKind::SamplePing,
            Packet::SamplePong(_) => PacketKind::SamplePong,
        }
    }

    /// Number of *payload* bytes this packet carries for the application
    /// (zero for pure control packets).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Packet::Eager(p) => p.data.len(),
            Packet::Aggregate(b) => b.len(),
            Packet::Chunk(p) => p.data.len(),
            Packet::SamplePing(p) | Packet::SamplePong(p) => p.data.len(),
            Packet::RdvRequest(_) | Packet::RdvAck(_) | Packet::Ack(_) => 0,
        }
    }

    /// True for control-plane packets that should jump transmit queues.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Packet::RdvRequest(_) | Packet::RdvAck(_) | Packet::Ack(_)
        )
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Packet::Eager(p) => {
                w.u64(p.msg_id);
                w.u16(p.seg_index);
                w.u16(p.total_segs);
                w.u32(p.data.len() as u32);
                w.bytes(&p.data);
            }
            Packet::Aggregate(b) => {
                w.bytes(b);
            }
            Packet::RdvRequest(p) => {
                w.u64(p.msg_id);
                w.u16(p.seg_index);
                w.u16(p.total_segs);
                w.u64(p.total_len);
            }
            Packet::RdvAck(p) => {
                w.u64(p.msg_id);
                w.u16(p.seg_index);
            }
            Packet::Chunk(p) => {
                w.u64(p.msg_id);
                w.u16(p.seg_index);
                w.u16(p.total_segs);
                w.u64(p.offset);
                w.u64(p.total_len);
                w.u16(p.chunk_index);
                w.u32(p.data.len() as u32);
                w.bytes(&p.data);
            }
            Packet::Ack(p) => {
                w.u64(p.msg_id);
            }
            Packet::SamplePing(p) | Packet::SamplePong(p) => {
                w.u64(p.probe_id);
                w.u32(p.data.len() as u32);
                w.bytes(&p.data);
            }
        }
    }

    fn decode_body(kind: PacketKind, payload: &[u8]) -> Result<Packet, WireError> {
        let mut r = Reader::new(payload, "packet body");
        let pkt = match kind {
            PacketKind::Eager => {
                let msg_id = r.u64()?;
                let seg_index = r.u16()?;
                let total_segs = r.u16()?;
                let len = r.u32()? as usize;
                let data = r.bytes(len)?;
                Packet::Eager(EagerPacket {
                    msg_id,
                    seg_index,
                    total_segs,
                    data,
                })
            }
            PacketKind::Aggregate => Packet::Aggregate(r.rest()),
            PacketKind::RdvRequest => Packet::RdvRequest(RdvRequest {
                msg_id: r.u64()?,
                seg_index: r.u16()?,
                total_segs: r.u16()?,
                total_len: r.u64()?,
            }),
            PacketKind::RdvAck => Packet::RdvAck(RdvAck {
                msg_id: r.u64()?,
                seg_index: r.u16()?,
            }),
            PacketKind::Chunk => {
                let msg_id = r.u64()?;
                let seg_index = r.u16()?;
                let total_segs = r.u16()?;
                let offset = r.u64()?;
                let total_len = r.u64()?;
                let chunk_index = r.u16()?;
                let len = r.u32()? as usize;
                if offset + len as u64 > total_len {
                    return Err(WireError::BadLength {
                        what: "chunk extent",
                        value: offset + len as u64,
                    });
                }
                let data = r.bytes(len)?;
                Packet::Chunk(ChunkPacket {
                    msg_id,
                    seg_index,
                    total_segs,
                    offset,
                    total_len,
                    chunk_index,
                    data,
                })
            }
            PacketKind::Ack => Packet::Ack(AckPacket { msg_id: r.u64()? }),
            PacketKind::SamplePing | PacketKind::SamplePong => {
                let probe_id = r.u64()?;
                let len = r.u32()? as usize;
                let data = r.bytes(len)?;
                let p = SamplePacket { probe_id, data };
                if kind == PacketKind::SamplePing {
                    Packet::SamplePing(p)
                } else {
                    Packet::SamplePong(p)
                }
            }
        };
        r.expect_end()?;
        Ok(pkt)
    }

    /// Encode this packet with its envelope into a wire buffer.
    ///
    /// `with_crc` computes and embeds the payload CRC (the simulator skips
    /// it; the threaded transport enables it).
    pub fn encode(&self, conn_id: ConnId, seq: u32, with_crc: bool) -> Bytes {
        let mut body = Writer::with_capacity(self.payload_bytes() + 48);
        self.encode_body(&mut body);
        let body = body.finish();

        let mut w = Writer::with_capacity(ENVELOPE_LEN + body.len());
        w.u16(MAGIC);
        w.u8(VERSION);
        w.u8(self.kind() as u8);
        w.u32(conn_id);
        w.u32(seq);
        w.u32(body.len() as u32);
        if with_crc {
            w.u32(crc32(&body));
            w.u16(FLAG_CRC);
        } else {
            w.u32(0);
            w.u16(0);
        }
        w.u16(0); // reserved
        w.bytes(&body);
        w.finish()
    }

    /// Decode one packet (envelope + body) from `buf`, which must contain
    /// exactly one packet.
    pub fn decode(buf: &[u8]) -> Result<(Envelope, Packet), WireError> {
        let mut r = Reader::new(buf, "envelope");
        let magic = r.u16()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = PacketKind::from_u8(r.u8()?)?;
        let conn_id = r.u32()?;
        let seq = r.u32()?;
        let payload_len = r.u32()? as usize;
        let crc = r.u32()?;
        let flags = r.u16()?;
        let _reserved = r.u16()?;
        if r.remaining() < payload_len {
            return Err(WireError::Truncated {
                what: "packet payload",
                needed: payload_len,
                available: r.remaining(),
            });
        }
        let payload = r.bytes(payload_len)?;
        r.expect_end()?;
        let crc_checked = flags & FLAG_CRC != 0;
        if crc_checked {
            let computed = crc32(&payload);
            if computed != crc {
                return Err(WireError::BadChecksum {
                    computed,
                    expected: crc,
                });
            }
        }
        let packet = Packet::decode_body(kind, &payload)?;
        Ok((
            Envelope {
                conn_id,
                seq,
                kind,
                crc_checked,
            },
            packet,
        ))
    }

    /// Total wire size this packet will occupy (envelope + body).
    pub fn wire_len(&self) -> usize {
        let body = match self {
            Packet::Eager(p) => 8 + 2 + 2 + 4 + p.data.len(),
            Packet::Aggregate(b) => b.len(),
            Packet::RdvRequest(_) => 8 + 2 + 2 + 8,
            Packet::RdvAck(_) => 8 + 2,
            Packet::Chunk(p) => 8 + 2 + 2 + 8 + 8 + 2 + 4 + p.data.len(),
            Packet::Ack(_) => 8,
            Packet::SamplePing(p) | Packet::SamplePong(p) => 8 + 4 + p.data.len(),
        };
        ENVELOPE_LEN + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(pkt: Packet) {
        let buf = pkt.encode(7, 42, true);
        assert_eq!(buf.len(), pkt.wire_len(), "wire_len must match encode");
        let (env, decoded) = Packet::decode(&buf).expect("decode");
        assert_eq!(env.conn_id, 7);
        assert_eq!(env.seq, 42);
        assert_eq!(env.kind, pkt.kind());
        assert!(env.crc_checked);
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn eager_roundtrip() {
        roundtrip(Packet::Eager(EagerPacket {
            msg_id: 99,
            seg_index: 1,
            total_segs: 4,
            data: Bytes::from_static(b"hello rails"),
        }));
    }

    #[test]
    fn empty_eager_roundtrip() {
        roundtrip(Packet::Eager(EagerPacket {
            msg_id: 0,
            seg_index: 0,
            total_segs: 1,
            data: Bytes::new(),
        }));
    }

    #[test]
    fn control_roundtrips() {
        roundtrip(Packet::RdvRequest(RdvRequest {
            msg_id: 5,
            seg_index: 2,
            total_segs: 4,
            total_len: 8 << 20,
        }));
        roundtrip(Packet::RdvAck(RdvAck {
            msg_id: 5,
            seg_index: 2,
        }));
        roundtrip(Packet::Ack(AckPacket { msg_id: 5 }));
    }

    #[test]
    fn chunk_roundtrip() {
        roundtrip(Packet::Chunk(ChunkPacket {
            msg_id: 12,
            seg_index: 1,
            total_segs: 2,
            offset: 4096,
            total_len: 65536,
            chunk_index: 1,
            data: Bytes::from(vec![0xAA; 1024]),
        }));
    }

    #[test]
    fn sample_roundtrips() {
        roundtrip(Packet::SamplePing(SamplePacket {
            probe_id: 3,
            data: Bytes::from(vec![1; 64]),
        }));
        roundtrip(Packet::SamplePong(SamplePacket {
            probe_id: 3,
            data: Bytes::from(vec![1; 64]),
        }));
    }

    #[test]
    fn crc_flag_off_skips_verification() {
        let pkt = Packet::Ack(AckPacket { msg_id: 1 });
        let buf = pkt.encode(0, 0, false);
        let (env, _) = Packet::decode(&buf).unwrap();
        assert!(!env.crc_checked);
    }

    #[test]
    fn corrupted_payload_detected() {
        let pkt = Packet::Eager(EagerPacket {
            msg_id: 1,
            seg_index: 0,
            total_segs: 1,
            data: Bytes::from(vec![7; 256]),
        });
        let buf = pkt.encode(0, 0, true);
        let mut raw = buf.to_vec();
        raw[ENVELOPE_LEN + 20] ^= 0xFF;
        match Packet::decode(&raw) {
            Err(WireError::BadChecksum { .. }) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let pkt = Packet::Ack(AckPacket { msg_id: 1 });
        let mut raw = pkt.encode(0, 0, false).to_vec();
        raw[0] = 0x00;
        assert!(matches!(Packet::decode(&raw), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let pkt = Packet::Ack(AckPacket { msg_id: 1 });
        let mut raw = pkt.encode(0, 0, false).to_vec();
        raw[2] = 9;
        assert!(matches!(
            Packet::decode(&raw),
            Err(WireError::BadVersion(9))
        ));
    }

    #[test]
    fn bad_kind_rejected() {
        let pkt = Packet::Ack(AckPacket { msg_id: 1 });
        let mut raw = pkt.encode(0, 0, false).to_vec();
        raw[3] = 200;
        assert!(matches!(Packet::decode(&raw), Err(WireError::BadKind(200))));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let pkt = Packet::Eager(EagerPacket {
            msg_id: 1,
            seg_index: 0,
            total_segs: 1,
            data: Bytes::from(vec![7; 64]),
        });
        let raw = pkt.encode(0, 0, false);
        for cut in [0, 5, ENVELOPE_LEN - 1, ENVELOPE_LEN + 3, raw.len() - 1] {
            assert!(
                Packet::decode(&raw[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn chunk_extent_overflow_rejected() {
        let pkt = Packet::Chunk(ChunkPacket {
            msg_id: 1,
            seg_index: 0,
            total_segs: 1,
            offset: 100,
            total_len: 50, // inconsistent: offset beyond total
            chunk_index: 0,
            data: Bytes::from(vec![0; 10]),
        });
        let raw = pkt.encode(0, 0, false);
        assert!(matches!(
            Packet::decode(&raw),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn control_classification() {
        assert!(Packet::RdvAck(RdvAck {
            msg_id: 0,
            seg_index: 0
        })
        .is_control());
        assert!(!Packet::Eager(EagerPacket {
            msg_id: 0,
            seg_index: 0,
            total_segs: 1,
            data: Bytes::new()
        })
        .is_control());
    }
}
