//! Wire-format error type.

use std::fmt;

/// Errors arising while encoding or decoding packets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The magic bytes did not match — not a NewMadeleine packet.
    BadMagic(u16),
    /// Unsupported wire-format version.
    BadVersion(u8),
    /// Unknown packet kind discriminant.
    BadKind(u8),
    /// Payload CRC mismatch.
    BadChecksum {
        /// CRC computed over the received payload.
        computed: u32,
        /// CRC carried in the header.
        expected: u32,
    },
    /// A length field is inconsistent with the enclosing buffer.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Trailing bytes after a complete packet.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, {available} available"
            ),
            WireError::BadMagic(m) => write!(f, "bad magic 0x{m:04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown packet kind {k}"),
            WireError::BadChecksum { computed, expected } => write!(
                f,
                "payload checksum mismatch: computed 0x{computed:08x}, header says 0x{expected:08x}"
            ),
            WireError::BadLength { what, value } => {
                write!(f, "inconsistent length for {what}: {value}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after packet"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated {
            what: "eager header",
            needed: 12,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("eager header") && s.contains("12") && s.contains('3'));
        assert!(WireError::BadMagic(0xdead).to_string().contains("dead"));
        assert!(WireError::BadKind(99).to_string().contains("99"));
    }
}
