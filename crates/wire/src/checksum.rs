//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used to protect packet payloads on the real threaded transport and to
//! let failure-injection tests corrupt packets detectably. Implemented
//! locally (the polynomial is public domain) to stay within the allowed
//! dependency set.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed chunks through `state` (start from
/// [`crc32_init`], finish with [`crc32_finish`]).
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Initial streaming state.
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Finalize a streaming state.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut st = crc32_init();
        for chunk in data.chunks(7) {
            st = update(st, chunk);
        }
        assert_eq!(crc32_finish(st), oneshot);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
