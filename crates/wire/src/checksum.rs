//! CRC-32 (IEEE 802.3 polynomial), three kernels behind one streaming API.
//!
//! Used to protect packet payloads on the real threaded transport and to
//! let failure-injection tests corrupt packets detectably. Implemented
//! locally (the polynomial is public domain) to stay within the allowed
//! dependency set.
//!
//! Kernels, selected once at first use and cached as a function pointer:
//!
//! * [`Kernel::Scalar`] — classic one-byte-at-a-time table loop. Kept as
//!   the portable reference every other kernel must match bit for bit,
//!   and as the baseline the `ablate_cycles` bench compares against.
//! * [`Kernel::Slice16`] — slicing-by-16: 16 interleaved 256-entry
//!   tables built at compile time, consuming 16 bytes per iteration with
//!   no data dependency between the table lookups.
//! * [`Kernel::Simd`] — x86_64 PCLMUL folding (the Intel "Fast CRC
//!   Computation Using PCLMULQDQ" scheme) behind
//!   `is_x86_feature_detected!`. All `unsafe` is confined to the
//!   [`simd`] submodule; everywhere else is safe Rust.
//!
//! The streaming `update`/`crc32_init`/`crc32_finish` surface is
//! unchanged from the scalar-only version, so the vectored encoders in
//! `frame.rs` (CRC streamed across `PacketFrame` parts) are untouched.
#![deny(clippy::missing_inline_in_public_items)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 16 interleaved 256-entry lookup tables, built at compile time.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k]` advances
/// a byte that sits `k` positions deeper in the 16-byte block.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

// ----------------------------------------------------------------------
// Kernel selection
// ----------------------------------------------------------------------

/// Which CRC kernel computes [`update`]. All kernels produce
/// bit-identical output (proptest-enforced); they differ only in speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Byte-at-a-time table loop (portable reference).
    Scalar,
    /// Slicing-by-16, 16 bytes per iteration (portable).
    Slice16,
    /// PCLMUL folding (x86_64 with sse4.1+pclmulqdq only).
    Simd,
}

impl Kernel {
    /// Stable lowercase name (matches the CLI `--kernel` values).
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Slice16 => "slice16",
            Kernel::Simd => "simd",
        }
    }

    /// Parse a `--kernel` value.
    #[inline]
    pub fn parse(s: &str) -> Option<Kernel> {
        match s {
            "scalar" => Some(Kernel::Scalar),
            "slice16" => Some(Kernel::Slice16),
            "simd" => Some(Kernel::Simd),
            _ => None,
        }
    }

    /// Whether this kernel can run on the current CPU.
    #[inline]
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Slice16 => true,
            Kernel::Simd => simd::available(),
        }
    }
}

/// Every kernel the current CPU supports, fastest last.
#[inline]
pub fn available_kernels() -> Vec<Kernel> {
    let mut v = vec![Kernel::Scalar, Kernel::Slice16];
    if Kernel::Simd.is_available() {
        v.push(Kernel::Simd);
    }
    v
}

type UpdateFn = fn(u32, &[u8]) -> u32;

/// Kernel entry points, indexed by `Kernel as usize`. `update_simd` is
/// only ever activated after feature detection succeeds.
const KERNEL_FNS: [UpdateFn; 3] = [update_scalar, update_slice16, update_simd];

/// Active kernel index + 1; 0 means "not resolved yet". Resolution (CPU
/// feature detection) happens exactly once; after that [`update`] costs
/// one relaxed load and an indirect call through the resolved function
/// pointer — never a per-call feature probe.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

#[cold]
fn resolve() -> usize {
    let best = if Kernel::Simd.is_available() {
        Kernel::Simd
    } else {
        Kernel::Slice16
    };
    // Racing resolvers pick the same answer; first store wins is fine.
    let idx = best as usize + 1;
    let _ = ACTIVE.compare_exchange(0, idx, Ordering::Relaxed, Ordering::Relaxed);
    ACTIVE.load(Ordering::Relaxed)
}

#[inline]
fn dispatch() -> UpdateFn {
    let mut idx = ACTIVE.load(Ordering::Relaxed);
    if idx == 0 {
        idx = resolve();
    }
    KERNEL_FNS[idx - 1]
}

/// The kernel [`update`] currently dispatches to (resolving it if this
/// is the first checksum touch of the process).
#[inline]
pub fn active_kernel() -> Kernel {
    let mut idx = ACTIVE.load(Ordering::Relaxed);
    if idx == 0 {
        idx = resolve();
    }
    match idx - 1 {
        0 => Kernel::Scalar,
        1 => Kernel::Slice16,
        _ => Kernel::Simd,
    }
}

/// Force the dispatched kernel (A/B runs: `nmad datapath --kernel`,
/// `ablate_cycles`). Returns `false` — and changes nothing — when the
/// kernel is unavailable on this CPU. Process-global.
#[inline]
pub fn set_kernel(k: Kernel) -> bool {
    if !k.is_available() {
        return false;
    }
    ACTIVE.store(k as usize + 1, Ordering::Relaxed);
    true
}

// ----------------------------------------------------------------------
// Streaming API (kernel-dispatched)
// ----------------------------------------------------------------------

/// CRC-32 of `data`.
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed chunks through `state` (start from
/// [`crc32_init`], finish with [`crc32_finish`]).
#[inline]
pub fn update(state: u32, data: &[u8]) -> u32 {
    dispatch()(state, data)
}

/// [`update`] through an explicitly chosen kernel (bench A/B legs;
/// normal callers use [`update`]). Falls back to slicing-by-16 when the
/// requested kernel is unavailable on this CPU.
#[inline]
pub fn update_with(kernel: Kernel, state: u32, data: &[u8]) -> u32 {
    match kernel {
        Kernel::Scalar => update_scalar(state, data),
        Kernel::Slice16 => update_slice16(state, data),
        Kernel::Simd => update_simd(state, data),
    }
}

/// Initial streaming state.
#[inline]
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Finalize a streaming state.
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

// ----------------------------------------------------------------------
// Kernels
// ----------------------------------------------------------------------

fn update_scalar(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

fn update_slice16(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        let c: &[u8; 16] = c.try_into().expect("chunks_exact(16)");
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = TABLES[15][(lo & 0xFF) as usize]
            ^ TABLES[14][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[13][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[12][(lo >> 24) as usize]
            ^ TABLES[11][c[4] as usize]
            ^ TABLES[10][c[5] as usize]
            ^ TABLES[9][c[6] as usize]
            ^ TABLES[8][c[7] as usize]
            ^ TABLES[7][c[8] as usize]
            ^ TABLES[6][c[9] as usize]
            ^ TABLES[5][c[10] as usize]
            ^ TABLES[4][c[11] as usize]
            ^ TABLES[3][c[12] as usize]
            ^ TABLES[2][c[13] as usize]
            ^ TABLES[1][c[14] as usize]
            ^ TABLES[0][c[15] as usize];
    }
    update_scalar(crc, chunks.remainder())
}

/// PCLMUL folding over the largest 16-byte-aligned prefix (needs at
/// least 64 bytes to fill the four fold lanes); the tail continues
/// through slicing-by-16 from the folded state. Falls back entirely to
/// slicing-by-16 when the CPU lacks the features or the input is short.
fn update_simd(state: u32, data: &[u8]) -> u32 {
    if data.len() < 64 || !simd::available() {
        return update_slice16(state, data);
    }
    let split = data.len() & !15;
    // SAFETY: `available()` checked sse4.1+pclmulqdq; the prefix is a
    // non-empty multiple of 16 bytes of at least 64 bytes.
    let folded = unsafe { simd::fold_pclmul(state, &data[..split]) };
    update_slice16(folded, &data[split..])
}

/// The one `unsafe` corner: PCLMUL carry-less-multiply folding for the
/// reflected IEEE polynomial, after Intel's white paper (V. Gopal et
/// al., "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ
/// Instruction") and the widely used folding constants for 0x04C11DB7.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_clmulepi64_si128, _mm_cvtsi32_si128, _mm_extract_epi32,
        _mm_loadu_si128, _mm_set_epi32, _mm_set_epi64x, _mm_srli_si128, _mm_xor_si128,
    };

    // x^(4·128+32) mod P, x^(4·128-32) mod P — fold 512 bits at a time.
    const K1: i64 = 0x1_5444_2bd4;
    const K2: i64 = 0x1_c6e4_1596;
    // x^(128+32) mod P, x^(128-32) mod P — fold 128 bits at a time.
    const K3: i64 = 0x1_7519_97d0;
    const K4: i64 = 0x0_ccaa_009e;
    // x^64 mod P — reduce 64 bits to 32.
    const K5: i64 = 0x1_63cd_6124;
    // Barrett reduction constants: P(x) and µ = floor(x^64 / P(x)).
    const P_X: i64 = 0x1_db71_0641;
    const U_PRIME: i64 = 0x1_f701_1641;

    pub fn available() -> bool {
        is_x86_feature_detected!("sse4.1") && is_x86_feature_detected!("pclmulqdq")
    }

    /// Fold `a` down by 128 bits and absorb `b`:
    /// `a·x^shift mod P ⊕ b`, with the two halves of `a` multiplied by
    /// the two keys packed in `keys`.
    #[inline]
    unsafe fn fold(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    #[inline]
    unsafe fn load(data: &mut &[u8]) -> __m128i {
        let v = _mm_loadu_si128(data.as_ptr() as *const __m128i);
        *data = &data[16..];
        v
    }

    /// Streaming-state-in, streaming-state-out PCLMUL fold.
    ///
    /// # Safety
    /// Caller guarantees sse4.1+pclmulqdq are present, `data.len()` is a
    /// multiple of 16 and at least 64.
    #[target_feature(enable = "sse4.1", enable = "pclmulqdq")]
    pub unsafe fn fold_pclmul(state: u32, mut data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
        // Four independent 128-bit fold lanes hide the PCLMUL latency.
        let mut x3 = load(&mut data);
        let mut x2 = load(&mut data);
        let mut x1 = load(&mut data);
        let mut x0 = load(&mut data);
        // The streaming state is the raw (pre-conditioned) CRC register:
        // XOR it straight into the first lane's low 32 bits.
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));

        let k1k2 = _mm_set_epi64x(K2, K1);
        while data.len() >= 64 {
            x3 = fold(x3, load(&mut data), k1k2);
            x2 = fold(x2, load(&mut data), k1k2);
            x1 = fold(x1, load(&mut data), k1k2);
            x0 = fold(x0, load(&mut data), k1k2);
        }

        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold(x3, x2, k3k4);
        x = fold(x, x1, k3k4);
        x = fold(x, x0, k3k4);
        while data.len() >= 16 {
            x = fold(x, load(&mut data), k3k4);
        }

        // 128 -> 64 bits.
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        // 64 -> 32 bits.
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        // Barrett reduction back into a 32-bit register value.
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t2 = _mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00);
        _mm_extract_epi32(_mm_xor_si128(x, t2), 1) as u32
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod simd {
    pub fn available() -> bool {
        false
    }

    /// Unreachable on non-x86_64 (`available()` is false); present so
    /// `update_simd` compiles unconditionally.
    ///
    /// # Safety
    /// Never called.
    pub unsafe fn fold_pclmul(_state: u32, _data: &[u8]) -> u32 {
        unreachable!("SIMD CRC kernel is x86_64-only")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut st = crc32_init();
        for chunk in data.chunks(7) {
            st = update(st, chunk);
        }
        assert_eq!(crc32_finish(st), oneshot);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        data[17] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }

    /// Deterministic pseudo-random bytes (SplitMix64 stream).
    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut i = 0u64;
        while out.len() < len {
            let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            out.extend_from_slice(&z.to_le_bytes());
            i += 1;
        }
        out.truncate(len);
        out
    }

    #[test]
    fn kernels_agree_on_awkward_lengths() {
        // Straddle every alignment regime: empty, sub-block, exactly the
        // SIMD minimum, off-by-one around fold boundaries, large.
        for &len in &[
            0usize, 1, 3, 15, 16, 17, 31, 48, 63, 64, 65, 79, 80, 127, 128, 129, 255, 1024, 4096,
            65537,
        ] {
            let data = noise(len, 0xDEAD_BEEF ^ len as u64);
            let want = update_with(Kernel::Scalar, crc32_init(), &data);
            assert_eq!(
                update_with(Kernel::Slice16, crc32_init(), &data),
                want,
                "slice16 diverges at len {len}"
            );
            assert_eq!(
                update_with(Kernel::Simd, crc32_init(), &data),
                want,
                "simd diverges at len {len}"
            );
        }
    }

    #[test]
    fn kernels_agree_streaming_from_nonzero_state() {
        let data = noise(1000, 42);
        for &split in &[0usize, 1, 13, 64, 999, 1000] {
            let (a, b) = data.split_at(split);
            let want = update_scalar(update_scalar(crc32_init(), a), b);
            for k in [Kernel::Slice16, Kernel::Simd] {
                let st = update_with(k, crc32_init(), a);
                assert_eq!(update_with(k, st, b), want, "{} split {split}", k.name());
            }
        }
    }

    #[test]
    fn forced_kernel_round_trip() {
        let data = noise(300, 7);
        let want = update_scalar(crc32_init(), &data);
        for k in available_kernels() {
            assert!(set_kernel(k), "{} advertised but not settable", k.name());
            assert_eq!(active_kernel(), k);
            assert_eq!(update(crc32_init(), &data), want);
        }
        // Leave the process on the auto-resolved best kernel.
        let best = *available_kernels().last().expect("nonempty");
        set_kernel(best);
    }

    #[test]
    fn kernel_parse_names() {
        for k in [Kernel::Scalar, Kernel::Slice16, Kernel::Simd] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("avx1024"), None);
    }
}
