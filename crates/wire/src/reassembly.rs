//! Receive-side reassembly.
//!
//! Multi-rail transfers deliver pieces of a message out of order: eager
//! segments may be aggregated or not, and large segments arrive as chunks
//! over *different* rails (paper §4: "large data segments can be split on
//! the sending side and later reassembled on the receiving side"). The
//! [`Reassembler`] brings them back together:
//!
//! * a message is an ordered list of segments (`seg_index` /
//!   `total_segs`);
//! * each segment is either delivered whole (eager/aggregate) or as a set
//!   of byte-ranged chunks;
//! * completion is detected per segment, then per message.
//!
//! The reassembler is strict: duplicate or overlapping data is reported as
//! an error (the engine decides whether to tolerate it — retry logic does,
//! normal operation treats it as a protocol bug).

use std::collections::HashMap;

use bytes::Bytes;

use crate::MsgId;

/// Reassembly errors (protocol violations from the reassembler's view).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReasmError {
    /// Two packets disagreed about the number of segments in the message.
    SegCountMismatch {
        /// Message involved.
        msg_id: MsgId,
        /// Count seen first.
        have: u16,
        /// Count in the offending packet.
        got: u16,
    },
    /// A whole segment arrived twice.
    DuplicateSegment {
        /// Message involved.
        msg_id: MsgId,
        /// Segment index.
        seg_index: u16,
    },
    /// A chunk overlapped already-received bytes.
    OverlappingChunk {
        /// Message involved.
        msg_id: MsgId,
        /// Segment index.
        seg_index: u16,
        /// Offset of the offending chunk.
        offset: u64,
    },
    /// Two chunks disagreed about a segment's total length, or a chunk ran
    /// past it.
    LengthMismatch {
        /// Message involved.
        msg_id: MsgId,
        /// Segment index.
        seg_index: u16,
    },
    /// A segment index was at or above `total_segs`.
    SegIndexOutOfRange {
        /// Message involved.
        msg_id: MsgId,
        /// The offending index.
        seg_index: u16,
        /// The message's segment count.
        total_segs: u16,
    },
    /// Chunked and eager delivery were mixed for one segment.
    MixedDelivery {
        /// Message involved.
        msg_id: MsgId,
        /// Segment index.
        seg_index: u16,
    },
}

impl std::fmt::Display for ReasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ReasmError {}

/// A fully reassembled message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageAssembly {
    /// The message id.
    pub msg_id: MsgId,
    /// Segments in index order, exactly as packed by the sender.
    pub segments: Vec<Bytes>,
}

impl MessageAssembly {
    /// Total payload bytes across segments.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Concatenate segments into one buffer (convenience for tests and the
    /// mini-MPI layer).
    pub fn into_contiguous(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        for s in self.segments {
            out.extend_from_slice(&s);
        }
        out
    }
}

#[derive(Debug)]
enum SegState {
    /// Nothing received yet.
    Missing,
    /// Delivered whole.
    Complete(Bytes),
    /// Being chunk-reassembled.
    Chunked {
        buf: Vec<u8>,
        /// Sorted, disjoint received intervals `(start, end)`.
        intervals: Vec<(u64, u64)>,
        total_len: u64,
        received: u64,
    },
}

impl SegState {
    fn is_complete(&self) -> bool {
        match self {
            SegState::Complete(_) => true,
            SegState::Chunked {
                received,
                total_len,
                ..
            } => received == total_len,
            SegState::Missing => false,
        }
    }
}

#[derive(Debug)]
struct PartialMessage {
    total_segs: u16,
    segs: Vec<SegState>,
    complete_segs: u16,
}

impl PartialMessage {
    fn new(total_segs: u16) -> Self {
        PartialMessage {
            total_segs,
            segs: (0..total_segs).map(|_| SegState::Missing).collect(),
            complete_segs: 0,
        }
    }
}

/// Per-connection reassembler for incoming messages.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<MsgId, PartialMessage>,
    /// Messages completed so far (accounting).
    completed_count: u64,
    /// Payload bytes completed so far (accounting).
    completed_bytes: u64,
}

impl Reassembler {
    /// Empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages currently in flight (incomplete).
    pub fn in_flight(&self) -> usize {
        self.partial.len()
    }

    /// Total messages completed.
    pub fn completed_count(&self) -> u64 {
        self.completed_count
    }

    /// Total payload bytes across completed messages.
    pub fn completed_bytes(&self) -> u64 {
        self.completed_bytes
    }

    fn entry(&mut self, msg_id: MsgId, total_segs: u16) -> Result<&mut PartialMessage, ReasmError> {
        let pm = self
            .partial
            .entry(msg_id)
            .or_insert_with(|| PartialMessage::new(total_segs));
        if pm.total_segs != total_segs {
            return Err(ReasmError::SegCountMismatch {
                msg_id,
                have: pm.total_segs,
                got: total_segs,
            });
        }
        Ok(pm)
    }

    fn check_index(msg_id: MsgId, seg_index: u16, total_segs: u16) -> Result<(), ReasmError> {
        if seg_index >= total_segs {
            return Err(ReasmError::SegIndexOutOfRange {
                msg_id,
                seg_index,
                total_segs,
            });
        }
        Ok(())
    }

    /// Deliver one whole segment. Returns the completed message when this
    /// was the last missing piece.
    pub fn insert_eager(
        &mut self,
        msg_id: MsgId,
        seg_index: u16,
        total_segs: u16,
        data: Bytes,
    ) -> Result<Option<MessageAssembly>, ReasmError> {
        Self::check_index(msg_id, seg_index, total_segs)?;
        let pm = self.entry(msg_id, total_segs)?;
        match &pm.segs[seg_index as usize] {
            SegState::Missing => {}
            SegState::Complete(_) => {
                return Err(ReasmError::DuplicateSegment { msg_id, seg_index })
            }
            SegState::Chunked { .. } => {
                return Err(ReasmError::MixedDelivery { msg_id, seg_index })
            }
        }
        pm.segs[seg_index as usize] = SegState::Complete(data);
        pm.complete_segs += 1;
        Ok(self.finish_if_done(msg_id))
    }

    /// Deliver one chunk of a segment. Returns the completed message when
    /// this chunk finished the last segment.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_chunk(
        &mut self,
        msg_id: MsgId,
        seg_index: u16,
        total_segs: u16,
        offset: u64,
        total_len: u64,
        data: &[u8],
    ) -> Result<Option<MessageAssembly>, ReasmError> {
        Self::check_index(msg_id, seg_index, total_segs)?;
        if offset + data.len() as u64 > total_len {
            return Err(ReasmError::LengthMismatch { msg_id, seg_index });
        }
        let pm = self.entry(msg_id, total_segs)?;
        let slot = &mut pm.segs[seg_index as usize];
        if let SegState::Missing = slot {
            *slot = SegState::Chunked {
                buf: vec![0; total_len as usize],
                intervals: Vec::new(),
                total_len,
                received: 0,
            };
        }
        match slot {
            SegState::Chunked {
                buf,
                intervals,
                total_len: have_len,
                received,
            } => {
                if *have_len != total_len {
                    return Err(ReasmError::LengthMismatch { msg_id, seg_index });
                }
                let start = offset;
                let end = offset + data.len() as u64;
                // Find insertion point in the sorted disjoint interval set
                // and reject any overlap.
                let idx = intervals.partition_point(|&(s, _)| s < start);
                if idx > 0 && intervals[idx - 1].1 > start {
                    return Err(ReasmError::OverlappingChunk {
                        msg_id,
                        seg_index,
                        offset,
                    });
                }
                if idx < intervals.len() && intervals[idx].0 < end {
                    return Err(ReasmError::OverlappingChunk {
                        msg_id,
                        seg_index,
                        offset,
                    });
                }
                intervals.insert(idx, (start, end));
                buf[start as usize..end as usize].copy_from_slice(data);
                *received += data.len() as u64;
                if *received == *have_len {
                    pm.complete_segs += 1;
                }
            }
            SegState::Complete(_) => return Err(ReasmError::MixedDelivery { msg_id, seg_index }),
            SegState::Missing => unreachable!("initialized above"),
        }
        Ok(self.finish_if_done(msg_id))
    }

    /// Like [`Self::insert_chunk`], but tolerant of data already received:
    /// overlapping byte ranges are trimmed away and only the missing bytes
    /// are stored. Retransmissions re-send whole messages and re-chunk
    /// them independently, so a retransmitted chunk's boundaries may
    /// straddle data that survived an earlier attempt — the payload bytes
    /// are identical, only the framing differs. Returns the completed
    /// message (if this chunk finished it) and the number of genuinely new
    /// bytes stored (0 for a pure duplicate).
    #[allow(clippy::too_many_arguments)]
    pub fn insert_chunk_lenient(
        &mut self,
        msg_id: MsgId,
        seg_index: u16,
        total_segs: u16,
        offset: u64,
        total_len: u64,
        data: &[u8],
    ) -> Result<(Option<MessageAssembly>, u64), ReasmError> {
        Self::check_index(msg_id, seg_index, total_segs)?;
        if offset + data.len() as u64 > total_len {
            return Err(ReasmError::LengthMismatch { msg_id, seg_index });
        }
        let pm = self.entry(msg_id, total_segs)?;
        let slot = &mut pm.segs[seg_index as usize];
        if let SegState::Missing = slot {
            *slot = SegState::Chunked {
                buf: vec![0; total_len as usize],
                intervals: Vec::new(),
                total_len,
                received: 0,
            };
        }
        let mut new_bytes = 0u64;
        match slot {
            SegState::Chunked {
                buf,
                intervals,
                total_len: have_len,
                received,
            } => {
                if *have_len != total_len {
                    return Err(ReasmError::LengthMismatch { msg_id, seg_index });
                }
                // Walk the sorted disjoint interval set and copy only the
                // uncovered sub-ranges of [offset, end).
                let end = offset + data.len() as u64;
                let mut cur = offset;
                let mut gaps: Vec<(u64, u64)> = Vec::new();
                for &(s, e) in intervals.iter() {
                    if e <= cur {
                        continue;
                    }
                    if s >= end {
                        break;
                    }
                    if s > cur {
                        gaps.push((cur, s));
                    }
                    cur = cur.max(e);
                    if cur >= end {
                        break;
                    }
                }
                if cur < end {
                    gaps.push((cur, end));
                }
                for &(s, e) in &gaps {
                    buf[s as usize..e as usize]
                        .copy_from_slice(&data[(s - offset) as usize..(e - offset) as usize]);
                    let idx = intervals.partition_point(|&(is, _)| is < s);
                    intervals.insert(idx, (s, e));
                    new_bytes += e - s;
                }
                *received += new_bytes;
                if new_bytes > 0 && *received == *have_len {
                    pm.complete_segs += 1;
                }
            }
            // The segment already arrived whole (eager) — a chunked
            // retransmission of it carries nothing new.
            SegState::Complete(_) => {}
            SegState::Missing => unreachable!("initialized above"),
        }
        Ok((self.finish_if_done(msg_id), new_bytes))
    }

    fn finish_if_done(&mut self, msg_id: MsgId) -> Option<MessageAssembly> {
        let pm = self.partial.get(&msg_id)?;
        if pm.complete_segs != pm.total_segs {
            return None;
        }
        debug_assert!(pm.segs.iter().all(SegState::is_complete));
        let pm = self.partial.remove(&msg_id).unwrap();
        let segments: Vec<Bytes> = pm
            .segs
            .into_iter()
            .map(|s| match s {
                SegState::Complete(b) => b,
                SegState::Chunked { buf, .. } => Bytes::from(buf),
                SegState::Missing => unreachable!("all segments complete"),
            })
            .collect();
        let assembly = MessageAssembly { msg_id, segments };
        self.completed_count += 1;
        self.completed_bytes += assembly.total_len() as u64;
        Some(assembly)
    }

    /// Drop any partial state for `msg_id` (failure handling), returning
    /// whether anything was dropped.
    pub fn abort(&mut self, msg_id: MsgId) -> bool {
        self.partial.remove(&msg_id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn single_segment_eager_completes() {
        let mut r = Reassembler::new();
        let done = r.insert_eager(1, 0, 1, b(b"hello")).unwrap().unwrap();
        assert_eq!(done.msg_id, 1);
        assert_eq!(done.segments.len(), 1);
        assert_eq!(&done.segments[0][..], b"hello");
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.completed_count(), 1);
        assert_eq!(r.completed_bytes(), 5);
    }

    #[test]
    fn multi_segment_out_of_order() {
        let mut r = Reassembler::new();
        assert!(r.insert_eager(7, 2, 3, b(b"C")).unwrap().is_none());
        assert!(r.insert_eager(7, 0, 3, b(b"A")).unwrap().is_none());
        let done = r.insert_eager(7, 1, 3, b(b"B")).unwrap().unwrap();
        let flat = done.into_contiguous();
        assert_eq!(flat, b"ABC");
    }

    #[test]
    fn chunked_segment_any_order() {
        let mut r = Reassembler::new();
        let payload: Vec<u8> = (0..100u8).collect();
        assert!(r
            .insert_chunk(3, 0, 1, 60, 100, &payload[60..])
            .unwrap()
            .is_none());
        assert!(r
            .insert_chunk(3, 0, 1, 0, 100, &payload[..30])
            .unwrap()
            .is_none());
        let done = r
            .insert_chunk(3, 0, 1, 30, 100, &payload[30..60])
            .unwrap()
            .unwrap();
        assert_eq!(done.segments[0].as_ref(), payload.as_slice());
    }

    #[test]
    fn mixed_eager_and_chunked_segments() {
        let mut r = Reassembler::new();
        let big: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        assert!(r.insert_eager(9, 0, 2, b(b"small")).unwrap().is_none());
        assert!(r
            .insert_chunk(9, 1, 2, 0, 1000, &big[..500])
            .unwrap()
            .is_none());
        let done = r
            .insert_chunk(9, 1, 2, 500, 1000, &big[500..])
            .unwrap()
            .unwrap();
        assert_eq!(&done.segments[0][..], b"small");
        assert_eq!(done.segments[1].as_ref(), big.as_slice());
    }

    #[test]
    fn duplicate_segment_rejected() {
        let mut r = Reassembler::new();
        r.insert_eager(1, 0, 2, b(b"x")).unwrap();
        let err = r.insert_eager(1, 0, 2, b(b"x")).unwrap_err();
        assert_eq!(
            err,
            ReasmError::DuplicateSegment {
                msg_id: 1,
                seg_index: 0
            }
        );
    }

    #[test]
    fn overlapping_chunk_rejected() {
        let mut r = Reassembler::new();
        r.insert_chunk(1, 0, 1, 0, 100, &[0; 50]).unwrap();
        let err = r.insert_chunk(1, 0, 1, 25, 100, &[0; 50]).unwrap_err();
        assert!(matches!(
            err,
            ReasmError::OverlappingChunk { offset: 25, .. }
        ));
        // Exact duplicate also overlaps.
        let err = r.insert_chunk(1, 0, 1, 0, 100, &[0; 50]).unwrap_err();
        assert!(matches!(
            err,
            ReasmError::OverlappingChunk { offset: 0, .. }
        ));
    }

    #[test]
    fn lenient_chunk_trims_overlap_and_keeps_received_data() {
        let mut r = Reassembler::new();
        let payload: Vec<u8> = (0..=255u8).cycle().take(100).collect();
        // A chunk from the first attempt survived: [60, 100).
        r.insert_chunk(1, 0, 1, 60, 100, &payload[60..]).unwrap();
        // The retransmission re-chunks the message with different
        // boundaries; its pieces straddle the surviving interval.
        let (done, fresh) = r
            .insert_chunk_lenient(1, 0, 1, 0, 100, &payload[..50])
            .unwrap();
        assert!(done.is_none());
        assert_eq!(fresh, 50);
        // [40, 80) overlaps both existing intervals; only [50, 60) is new.
        let (done, fresh) = r
            .insert_chunk_lenient(1, 0, 1, 40, 100, &payload[40..80])
            .unwrap();
        assert_eq!(fresh, 10);
        let done = done.expect("message complete once every byte is covered");
        assert_eq!(done.segments[0].as_ref(), payload.as_slice());
        // Entirely-covered chunks are pure duplicates.
        let mut r2 = Reassembler::new();
        r2.insert_chunk(2, 0, 1, 0, 100, &payload[..50]).unwrap();
        let (done, fresh) = r2
            .insert_chunk_lenient(2, 0, 1, 10, 100, &payload[10..30])
            .unwrap();
        assert!(done.is_none());
        assert_eq!(fresh, 0);
    }

    #[test]
    fn chunk_past_total_rejected() {
        let mut r = Reassembler::new();
        let err = r.insert_chunk(1, 0, 1, 90, 100, &[0; 20]).unwrap_err();
        assert!(matches!(err, ReasmError::LengthMismatch { .. }));
    }

    #[test]
    fn inconsistent_total_len_rejected() {
        let mut r = Reassembler::new();
        r.insert_chunk(1, 0, 1, 0, 100, &[0; 10]).unwrap();
        let err = r.insert_chunk(1, 0, 1, 50, 200, &[0; 10]).unwrap_err();
        assert!(matches!(err, ReasmError::LengthMismatch { .. }));
    }

    #[test]
    fn seg_count_mismatch_rejected() {
        let mut r = Reassembler::new();
        r.insert_eager(1, 0, 3, b(b"x")).unwrap();
        let err = r.insert_eager(1, 1, 4, b(b"y")).unwrap_err();
        assert_eq!(
            err,
            ReasmError::SegCountMismatch {
                msg_id: 1,
                have: 3,
                got: 4
            }
        );
    }

    #[test]
    fn seg_index_out_of_range_rejected() {
        let mut r = Reassembler::new();
        let err = r.insert_eager(1, 3, 3, b(b"x")).unwrap_err();
        assert!(matches!(err, ReasmError::SegIndexOutOfRange { .. }));
    }

    #[test]
    fn mixed_delivery_rejected() {
        let mut r = Reassembler::new();
        r.insert_eager(1, 0, 2, b(b"whole")).unwrap();
        let err = r.insert_chunk(1, 0, 2, 0, 10, &[0; 5]).unwrap_err();
        assert!(matches!(err, ReasmError::MixedDelivery { .. }));

        let mut r = Reassembler::new();
        r.insert_chunk(2, 0, 1, 0, 10, &[0; 5]).unwrap();
        let err = r.insert_eager(2, 0, 1, b(b"whole")).unwrap_err();
        assert!(matches!(err, ReasmError::MixedDelivery { .. }));
    }

    #[test]
    fn abort_discards_partial_state() {
        let mut r = Reassembler::new();
        r.insert_eager(5, 0, 2, b(b"x")).unwrap();
        assert_eq!(r.in_flight(), 1);
        assert!(r.abort(5));
        assert!(!r.abort(5));
        assert_eq!(r.in_flight(), 0);
        // The message can start over afterwards.
        r.insert_eager(5, 0, 2, b(b"x")).unwrap();
        let done = r.insert_eager(5, 1, 2, b(b"y")).unwrap().unwrap();
        assert_eq!(done.into_contiguous(), b"xy");
    }

    #[test]
    fn interleaved_messages_do_not_interfere() {
        let mut r = Reassembler::new();
        assert!(r.insert_eager(1, 0, 2, b(b"1a")).unwrap().is_none());
        assert!(r.insert_eager(2, 0, 2, b(b"2a")).unwrap().is_none());
        let d2 = r.insert_eager(2, 1, 2, b(b"2b")).unwrap().unwrap();
        assert_eq!(d2.into_contiguous(), b"2a2b");
        let d1 = r.insert_eager(1, 1, 2, b(b"1b")).unwrap().unwrap();
        assert_eq!(d1.into_contiguous(), b"1a1b");
    }

    #[test]
    fn zero_length_segment_completes() {
        let mut r = Reassembler::new();
        let done = r.insert_eager(1, 0, 1, Bytes::new()).unwrap().unwrap();
        assert_eq!(done.total_len(), 0);
    }
}
