//! Property tests for the hardware models: analytic costs must behave
//! like physics (monotone in size, positive, mode-consistent) for any
//! plausible NIC parameterization.

use nmad_model::{NicModel, TxMode};
use nmad_sim::SimDuration;
use proptest::prelude::*;

fn arb_nic() -> impl Strategy<Value = NicModel> {
    (
        100.0f64..3000.0, // link MB/s
        100.0f64..2000.0, // pio MB/s
        1u64..4000,       // wire latency ns
        1usize..64,       // pio threshold KiB
        1usize..8,        // rdv = pio * this
        1u64..2000,       // tx overhead ns
        1u64..2000,       // rx overhead ns
    )
        .prop_map(|(link, pio, lat, pio_kib, rdv_mult, txo, rxo)| NicModel {
            name: "arb",
            wire_latency: SimDuration::from_ns(lat),
            link_bandwidth: link * 1e6,
            pio_threshold: pio_kib << 10,
            pio_bandwidth: pio * 1e6,
            pio_fixed: SimDuration::from_ns(200),
            dma_setup: SimDuration::from_ns(300),
            rdv_threshold: (pio_kib << 10) * rdv_mult,
            tx_overhead: SimDuration::from_ns(txo),
            rx_overhead: SimDuration::from_ns(rxo),
            poll_cost: SimDuration::from_ns(100),
            mtu: 64 << 20,
        })
}

proptest! {
    /// One-way time within a transmission mode is monotone in size.
    #[test]
    fn oneway_monotone_within_mode(nic in arb_nic(), a in 0usize..(8 << 20), b in 0usize..(8 << 20)) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assume!(nic.tx_mode(lo) == nic.tx_mode(hi));
        prop_assert!(
            nic.analytic_oneway(lo) <= nic.analytic_oneway(hi),
            "mode {:?}: t({lo}) > t({hi})",
            nic.tx_mode(lo)
        );
    }

    /// Mode thresholds classify consistently and rendezvous always costs
    /// at least a handshake over the plain DMA path.
    #[test]
    fn modes_and_handshake(nic in arb_nic(), size in 0usize..(8 << 20)) {
        nic.validate();
        let mode = nic.tx_mode(size);
        match mode {
            TxMode::Pio => prop_assert!(size < nic.pio_threshold),
            TxMode::EagerDma => {
                prop_assert!(size >= nic.pio_threshold && size < nic.rdv_threshold)
            }
            TxMode::Rendezvous => {
                prop_assert!(size >= nic.rdv_threshold);
                prop_assert!(nic.analytic_oneway(size) > nic.analytic_dma_oneway(size));
            }
        }
        prop_assert!(nic.analytic_oneway(size).as_ps() > 0);
    }

    /// Effective bandwidth approaches (and never exceeds) the link rate as
    /// transfers grow.
    #[test]
    fn bandwidth_bounded_by_link(nic in arb_nic()) {
        let bw = nic.analytic_bandwidth_mbs(32 << 20) * 1e6;
        prop_assert!(bw <= nic.link_bandwidth * 1.001, "{bw} > {}", nic.link_bandwidth);
        prop_assert!(bw >= nic.link_bandwidth * 0.5, "{bw} far below link at 32 MiB");
    }
}
