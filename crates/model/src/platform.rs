//! Platform presets calibrated to the paper's testbed.
//!
//! Calibration targets (paper §3.1–3.4):
//!
//! | Observable | Paper | Model |
//! |---|---|---|
//! | Myri-10G 4 B one-way latency | 2.8 µs | tx 600 + pio 400 + wire 1000 + rx 750 ns |
//! | Myri-10G 8 MB bandwidth | ~1200 MB/s | link 1202 MB/s minus overheads |
//! | Quadrics 4 B one-way latency | 1.7 µs | tx 300 + pio 250 + wire 550 + rx 550 ns |
//! | Quadrics 8 MB bandwidth | ~850 MB/s | link 851 MB/s minus overheads |
//! | PIO/DMA regime switch | 8 KB segments (Fig 4: gains above 16 KB total) | `pio_threshold` = 8 KiB |
//! | Aggregation copy cost | "very low" (§3.1) | memcpy 6.4 GB/s + 40 ns/op |
//! | Multi-rail loses below 16 KB | per-packet host costs dominate (§3.2) | overhead-heavy latency split above |
//! | Greedy 2-rail plateau | 1675 MB/s | equal split bound: 2 x min-rail = 1702 MB/s minus per-chunk costs |
//! | I/O bus | "theoretically ~2 GB/s", *not* the greedy bottleneck | effective 1950 MB/s |
//!
//! The bus figure deserves a note: the paper credits the bus for *allowing*
//! 1675 MB/s, and the greedy plateau is actually bound by the equal-split
//! rule (both rails carry the same bytes, so the slower rail paces the
//! transfer: 2 x 851 = 1702 MB/s). The bus only binds the *hetero-split*
//! strategy of Fig. 7, which would otherwise reach the 2053 MB/s rail sum.

use nmad_sim::SimDuration;

use crate::host::HostModel;
use crate::nic::NicModel;
use crate::{KIB, MB, MIB};

/// Index of a rail within a [`Platform`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RailId(pub usize);

impl std::fmt::Display for RailId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rail{}", self.0)
    }
}

/// A node configuration: one host and the set of rails connecting it to its
/// peer. Both ends of the paper's two-node testbed are identical.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Host (CPU, memcpy, I/O bus) model.
    pub host: HostModel,
    /// NICs, in rail-id order.
    pub rails: Vec<NicModel>,
}

impl Platform {
    /// Build and validate a platform.
    pub fn new(host: HostModel, rails: Vec<NicModel>) -> Self {
        assert!(!rails.is_empty(), "a platform needs at least one rail");
        host.validate();
        for r in &rails {
            r.validate();
        }
        Platform { host, rails }
    }

    /// Number of rails.
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }

    /// All rail ids.
    pub fn rail_ids(&self) -> impl Iterator<Item = RailId> {
        (0..self.rails.len()).map(RailId)
    }

    /// NIC model of `rail`.
    pub fn rail(&self, rail: RailId) -> &NicModel {
        &self.rails[rail.0]
    }

    /// The rail with the lowest minimal-message latency (the one the
    /// aggregation strategy favours for small messages — Quadrics on the
    /// paper platform).
    pub fn lowest_latency_rail(&self) -> RailId {
        self.rail_ids()
            .min_by_key(|&r| self.rail(r).analytic_pio_oneway(0))
            .expect("non-empty")
    }

    /// The rail with the highest link bandwidth (Myri-10G on the paper
    /// platform).
    pub fn highest_bandwidth_rail(&self) -> RailId {
        self.rail_ids()
            .max_by(|&a, &b| {
                self.rail(a)
                    .link_bandwidth
                    .partial_cmp(&self.rail(b).link_bandwidth)
                    .unwrap()
            })
            .expect("non-empty")
    }

    /// Sum of rail link bandwidths (upper bound on multi-rail throughput
    /// before bus effects).
    pub fn rail_bandwidth_sum(&self) -> f64 {
        self.rails.iter().map(|r| r.link_bandwidth).sum()
    }
}

/// The dual-core 1.8 GHz Opteron node of the paper (§3.1).
pub fn opteron_node() -> HostModel {
    HostModel {
        name: "opteron-1.8GHz",
        memcpy_bandwidth: 6400.0 * MB,
        memcpy_fixed: SimDuration::from_ns(40),
        bus_capacity: 1950.0 * MB,
        submit_cost: SimDuration::from_ns(30),
        sched_cost: SimDuration::from_ns(50),
        // The paper's library is single-threaded even on the dual-core
        // node; multi-core engines are the explicit future work of §4.
        cores: 1,
    }
}

/// Myri-10G with the MX 1.2.0 driver: 2.8 µs latency, ~1200 MB/s.
pub fn myri_10g() -> NicModel {
    NicModel {
        name: "myri-10g",
        wire_latency: SimDuration::from_ns(1000),
        link_bandwidth: 1202.0 * MB,
        pio_threshold: 8 * KIB,
        pio_bandwidth: 800.0 * MB,
        pio_fixed: SimDuration::from_ns(400),
        dma_setup: SimDuration::from_ns(400),
        rdv_threshold: 32 * KIB,
        tx_overhead: SimDuration::from_ns(600),
        rx_overhead: SimDuration::from_ns(750),
        poll_cost: SimDuration::from_ns(100),
        mtu: 16 * MIB,
    }
}

/// Quadrics QM500 with the Elan driver: 1.7 µs latency, ~850 MB/s.
pub fn quadrics_qm500() -> NicModel {
    NicModel {
        name: "quadrics-qm500",
        wire_latency: SimDuration::from_ns(550),
        link_bandwidth: 851.0 * MB,
        pio_threshold: 8 * KIB,
        pio_bandwidth: 900.0 * MB,
        pio_fixed: SimDuration::from_ns(250),
        dma_setup: SimDuration::from_ns(300),
        rdv_threshold: 32 * KIB,
        tx_overhead: SimDuration::from_ns(300),
        rx_overhead: SimDuration::from_ns(550),
        poll_cost: SimDuration::from_ns(100),
        mtu: 16 * MIB,
    }
}

/// Gigabit Ethernet over the socket API — the library's legacy fallback
/// driver (paper §2 lists TCP/IP support). Useful for 3-rail experiments.
pub fn gige() -> NicModel {
    NicModel {
        name: "gige-tcp",
        wire_latency: SimDuration::from_ns(25_000),
        link_bandwidth: 110.0 * MB,
        pio_threshold: 0, // sockets never PIO: the kernel copies, CPU-cheap here
        pio_bandwidth: 1000.0 * MB,
        pio_fixed: SimDuration::from_ns(2_000),
        dma_setup: SimDuration::from_ns(3_000),
        rdv_threshold: 64 * KIB,
        tx_overhead: SimDuration::from_ns(4_000),
        rx_overhead: SimDuration::from_ns(5_000),
        poll_cost: SimDuration::from_ns(400),
        mtu: 16 * MIB,
    }
}

/// Dolphin SCI via SiSCI (paper §2 lists a SiSCI driver): very low latency,
/// modest bandwidth.
pub fn sci_dolphin() -> NicModel {
    NicModel {
        name: "sci-dolphin",
        wire_latency: SimDuration::from_ns(500),
        link_bandwidth: 320.0 * MB,
        pio_threshold: 8 * KIB,
        pio_bandwidth: 700.0 * MB,
        pio_fixed: SimDuration::from_ns(150),
        dma_setup: SimDuration::from_ns(350),
        rdv_threshold: 32 * KIB,
        tx_overhead: SimDuration::from_ns(180),
        rx_overhead: SimDuration::from_ns(350),
        poll_cost: SimDuration::from_ns(100),
        mtu: 16 * MIB,
    }
}

/// Myrinet-2000 with the GM-2 driver (paper §2 lists a GM-2 driver; see
/// also the paper's reference 17, the two-port GM-2 evaluation).
pub fn myrinet_2000_gm() -> NicModel {
    NicModel {
        name: "myrinet2000-gm2",
        wire_latency: SimDuration::from_ns(2_600),
        link_bandwidth: 245.0 * MB,
        pio_threshold: 4 * KIB,
        pio_bandwidth: 350.0 * MB,
        pio_fixed: SimDuration::from_ns(500),
        dma_setup: SimDuration::from_ns(600),
        rdv_threshold: 32 * KIB,
        tx_overhead: SimDuration::from_ns(900),
        rx_overhead: SimDuration::from_ns(1_100),
        poll_cost: SimDuration::from_ns(150),
        mtu: 16 * MIB,
    }
}

/// A 4x SDR InfiniBand HCA of the era (the paper's introduction names
/// "the various Infiniband solutions" among the candidate rails).
pub fn infiniband_sdr4x() -> NicModel {
    NicModel {
        name: "infiniband-4xsdr",
        wire_latency: SimDuration::from_ns(1_900),
        link_bandwidth: 950.0 * MB,
        pio_threshold: 8 * KIB,
        pio_bandwidth: 700.0 * MB,
        pio_fixed: SimDuration::from_ns(350),
        dma_setup: SimDuration::from_ns(450),
        rdv_threshold: 32 * KIB,
        tx_overhead: SimDuration::from_ns(650),
        rx_overhead: SimDuration::from_ns(800),
        poll_cost: SimDuration::from_ns(120),
        mtu: 16 * MIB,
    }
}

/// The exact two-rail platform of the paper: rail 0 = Myri-10G,
/// rail 1 = Quadrics QM500, on an Opteron node.
pub fn paper_platform() -> Platform {
    Platform::new(opteron_node(), vec![myri_10g(), quadrics_qm500()])
}

/// A single-rail platform (used for the reference curves of Figs. 2–3 and
/// for the Fig. 6 "no second NIC to poll" baseline).
pub fn single_rail_platform(nic: NicModel) -> Platform {
    Platform::new(opteron_node(), vec![nic])
}

/// A three-rail heterogeneous platform (extension experiments).
pub fn three_rail_platform() -> Platform {
    Platform::new(
        opteron_node(),
        vec![myri_10g(), quadrics_qm500(), sci_dolphin()],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_shape() {
        let p = paper_platform();
        assert_eq!(p.rail_count(), 2);
        assert_eq!(p.rail(RailId(0)).name, "myri-10g");
        assert_eq!(p.rail(RailId(1)).name, "quadrics-qm500");
    }

    #[test]
    fn quadrics_is_lowest_latency_myri_is_highest_bandwidth() {
        let p = paper_platform();
        assert_eq!(p.rail(p.lowest_latency_rail()).name, "quadrics-qm500");
        assert_eq!(p.rail(p.highest_bandwidth_rail()).name, "myri-10g");
    }

    #[test]
    fn greedy_plateau_bound_is_near_1675() {
        // Equal split of a large message over both rails is paced by the
        // slower rail: bandwidth bound = 2 x min(link). Paper measures 1675.
        let p = paper_platform();
        let min_link = p
            .rails
            .iter()
            .map(|r| r.link_bandwidth)
            .fold(f64::INFINITY, f64::min);
        let bound_mbs = 2.0 * min_link / MB;
        assert!((bound_mbs - 1702.0).abs() < 1.0);
        assert!(bound_mbs > 1675.0 && bound_mbs < 1750.0);
    }

    #[test]
    fn bus_binds_only_hetero_split() {
        let p = paper_platform();
        let sum = p.rail_bandwidth_sum() / MB; // 2053
        let bus = p.host.bus_capacity / MB; // 1950
        assert!(bus < sum, "bus must cap the hetero-split rail sum");
        assert!(
            bus > 1702.0,
            "bus must NOT cap the greedy equal-split plateau"
        );
    }

    #[test]
    fn rail_ids_iterate_in_order() {
        let p = three_rail_platform();
        let ids: Vec<usize> = p.rail_ids().map(|r| r.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one rail")]
    fn empty_platform_rejected() {
        Platform::new(opteron_node(), vec![]);
    }

    #[test]
    fn extra_presets_validate_and_rank_sanely() {
        let gm = myrinet_2000_gm();
        let ib = infiniband_sdr4x();
        gm.validate();
        ib.validate();
        // Era-accurate ordering: Myri-10G > IB 4x SDR > Quadrics > GM-2 in
        // bandwidth; Quadrics fastest in latency among these.
        assert!(myri_10g().link_bandwidth > ib.link_bandwidth);
        assert!(ib.link_bandwidth > quadrics_qm500().link_bandwidth);
        assert!(quadrics_qm500().link_bandwidth > gm.link_bandwidth);
        assert!(quadrics_qm500().analytic_pio_oneway(4) < ib.analytic_pio_oneway(4));
        // An IB + Myri-10G platform still picks sensible roles.
        let p = Platform::new(opteron_node(), vec![infiniband_sdr4x(), myri_10g()]);
        assert_eq!(p.rail(p.highest_bandwidth_rail()).name, "myri-10g");
    }

    #[test]
    fn three_rail_platform_validates() {
        let p = three_rail_platform();
        assert_eq!(p.rail_count(), 3);
        // SCI's full analytic path (180+150+500+350 = 1180 ns) undercuts
        // Quadrics (1650 ns), so SCI becomes the latency rail here.
        assert_eq!(p.rail(p.lowest_latency_rail()).name, "sci-dolphin");
        assert_eq!(p.rail(p.highest_bandwidth_rail()).name, "myri-10g");
    }
}
