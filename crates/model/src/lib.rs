//! # nmad-model — hardware models of the paper's testbed
//!
//! The original evaluation ran on two dual-core 1.8 GHz Opteron nodes linked
//! by a Myri-10G/MX NIC and a Quadrics QM500/Elan NIC (paper §3.1). That
//! hardware is unobtainable, so this crate models the *observable
//! characteristics* the NewMadeleine strategies actually react to:
//!
//! * per-rail wire latency, link bandwidth and software overheads
//!   ([`NicModel`]);
//! * the PIO / eager-DMA / rendezvous transmission regimes and their
//!   thresholds ([`TxMode`]) — PIO occupies the host CPU for the whole
//!   injection, which is why the paper's multi-rail gains only start at
//!   8 KB segments;
//! * the host CPU, memcpy engine and the shared I/O bus ([`HostModel`]),
//!   whose ~2 GB/s ceiling caps the aggregated two-rail bandwidth at the
//!   observed 1675 MB/s;
//! * ready-made [`platform`] presets, including the exact two-rail
//!   configuration of the paper.
//!
//! Calibration constants live next to the presets and are cross-checked by
//! the `calibration` test module and by integration tests at the workspace
//! root.

#![warn(missing_docs)]

pub mod config;
pub mod host;
pub mod nic;
pub mod platform;

pub use config::{load_platform, PlatformSpec};
pub use host::HostModel;
pub use nic::{NicModel, TxMode};
pub use platform::{Platform, RailId};

/// Decimal megabyte (the unit used by the paper's bandwidth plots).
pub const MB: f64 = 1.0e6;
/// Decimal gigabyte.
pub const GB: f64 = 1.0e9;
/// Binary kibibyte (the unit used by the paper's message-size axes).
pub const KIB: usize = 1024;
/// Binary mebibyte.
pub const MIB: usize = 1024 * 1024;
