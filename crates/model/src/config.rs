//! User-defined platforms from JSON.
//!
//! A downstream user modelling their own cluster writes a JSON file in
//! human units (nanoseconds, MB/s, bytes) instead of constructing
//! [`NicModel`]s by hand:
//!
//! ```json
//! {
//!   "host": { "name": "epyc", "memcpy_mbs": 12000, "bus_mbs": 6000,
//!             "cores": 2 },
//!   "rails": [
//!     { "name": "cx5-eth", "latency_ns": 1300, "bandwidth_mbs": 3100,
//!       "pio_threshold": 4096, "rdv_threshold": 65536 },
//!     { "name": "cx5-ib",  "latency_ns": 900,  "bandwidth_mbs": 2900 }
//!   ]
//! }
//! ```
//!
//! Unspecified knobs fall back to paper-platform-like defaults, so a
//! two-line rail description is enough to start experimenting.

use serde::{de, ser, DeError, Deserialize, Serialize, Value};

use nmad_sim::SimDuration;

use crate::host::HostModel;
use crate::nic::NicModel;
use crate::platform::Platform;
use crate::{KIB, MB, MIB};

/// JSON description of one rail (human units).
#[derive(Clone, Debug)]
pub struct NicSpec {
    /// Rail name (figure legends, traces).
    pub name: String,
    /// One-way wire latency in nanoseconds.
    pub latency_ns: u64,
    /// Sustained link bandwidth in decimal MB/s.
    pub bandwidth_mbs: f64,
    /// PIO/DMA switch in bytes (default 8 KiB).
    pub pio_threshold: usize,
    /// Rendezvous threshold in bytes (default 32 KiB).
    pub rdv_threshold: usize,
    /// PIO injection rate in MB/s (default 75% of link bandwidth).
    pub pio_mbs: Option<f64>,
    /// Per-packet send-side software overhead in ns (default 400).
    pub tx_overhead_ns: u64,
    /// Per-packet receive-side software overhead in ns (default 600).
    pub rx_overhead_ns: u64,
    /// Poll cost in ns (default 100).
    pub poll_ns: u64,
}

impl Serialize for NicSpec {
    fn to_value(&self) -> Value {
        ser::object([
            ("name", ser::v(&self.name)),
            ("latency_ns", ser::v(&self.latency_ns)),
            ("bandwidth_mbs", ser::v(&self.bandwidth_mbs)),
            ("pio_threshold", ser::v(&self.pio_threshold)),
            ("rdv_threshold", ser::v(&self.rdv_threshold)),
            ("pio_mbs", ser::v(&self.pio_mbs)),
            ("tx_overhead_ns", ser::v(&self.tx_overhead_ns)),
            ("rx_overhead_ns", ser::v(&self.rx_overhead_ns)),
            ("poll_ns", ser::v(&self.poll_ns)),
        ])
    }
}

impl Deserialize for NicSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de::require_object(v, "rail")?;
        Ok(NicSpec {
            name: de::field(v, "name")?,
            latency_ns: de::field(v, "latency_ns")?,
            bandwidth_mbs: de::field(v, "bandwidth_mbs")?,
            pio_threshold: de::field_or(v, "pio_threshold", default_pio_threshold)?,
            rdv_threshold: de::field_or(v, "rdv_threshold", default_rdv_threshold)?,
            pio_mbs: de::field_or(v, "pio_mbs", || None)?,
            tx_overhead_ns: de::field_or(v, "tx_overhead_ns", default_tx_overhead_ns)?,
            rx_overhead_ns: de::field_or(v, "rx_overhead_ns", default_rx_overhead_ns)?,
            poll_ns: de::field_or(v, "poll_ns", default_poll_ns)?,
        })
    }
}

fn default_pio_threshold() -> usize {
    8 * KIB
}
fn default_rdv_threshold() -> usize {
    32 * KIB
}
fn default_tx_overhead_ns() -> u64 {
    400
}
fn default_rx_overhead_ns() -> u64 {
    600
}
fn default_poll_ns() -> u64 {
    100
}

impl NicSpec {
    /// Materialize the rail model. The name is interned (leaked) — config
    /// loading happens a handful of times per process.
    pub fn build(&self) -> NicModel {
        let name: &'static str = Box::leak(self.name.clone().into_boxed_str());
        NicModel {
            name,
            wire_latency: SimDuration::from_ns(self.latency_ns),
            link_bandwidth: self.bandwidth_mbs * MB,
            pio_threshold: self.pio_threshold,
            pio_bandwidth: self.pio_mbs.unwrap_or(self.bandwidth_mbs * 0.75) * MB,
            pio_fixed: SimDuration::from_ns(250),
            dma_setup: SimDuration::from_ns(350),
            rdv_threshold: self.rdv_threshold,
            tx_overhead: SimDuration::from_ns(self.tx_overhead_ns),
            rx_overhead: SimDuration::from_ns(self.rx_overhead_ns),
            poll_cost: SimDuration::from_ns(self.poll_ns),
            mtu: 16 * MIB,
        }
    }
}

/// JSON description of the host (human units).
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// Host name.
    pub name: String,
    /// Memcpy bandwidth in MB/s (default 6400).
    pub memcpy_mbs: f64,
    /// Effective I/O bus capacity in MB/s (default 1950).
    pub bus_mbs: f64,
    /// CPU cores available to the engine (default 1).
    pub cores: usize,
}

impl Serialize for HostSpec {
    fn to_value(&self) -> Value {
        ser::object([
            ("name", ser::v(&self.name)),
            ("memcpy_mbs", ser::v(&self.memcpy_mbs)),
            ("bus_mbs", ser::v(&self.bus_mbs)),
            ("cores", ser::v(&self.cores)),
        ])
    }
}

impl Deserialize for HostSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de::require_object(v, "host")?;
        Ok(HostSpec {
            name: de::field_or(v, "name", default_host_name)?,
            memcpy_mbs: de::field_or(v, "memcpy_mbs", default_memcpy_mbs)?,
            bus_mbs: de::field_or(v, "bus_mbs", default_bus_mbs)?,
            cores: de::field_or(v, "cores", default_cores)?,
        })
    }
}

fn default_host_name() -> String {
    "custom-host".into()
}
fn default_memcpy_mbs() -> f64 {
    6400.0
}
fn default_bus_mbs() -> f64 {
    1950.0
}
fn default_cores() -> usize {
    1
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec {
            name: default_host_name(),
            memcpy_mbs: default_memcpy_mbs(),
            bus_mbs: default_bus_mbs(),
            cores: default_cores(),
        }
    }
}

impl HostSpec {
    /// Materialize the host model.
    pub fn build(&self) -> HostModel {
        let name: &'static str = Box::leak(self.name.clone().into_boxed_str());
        HostModel {
            name,
            memcpy_bandwidth: self.memcpy_mbs * MB,
            memcpy_fixed: SimDuration::from_ns(40),
            bus_capacity: self.bus_mbs * MB,
            submit_cost: SimDuration::from_ns(30),
            sched_cost: SimDuration::from_ns(50),
            cores: self.cores,
        }
    }
}

/// JSON description of a whole platform.
#[derive(Clone, Debug)]
pub struct PlatformSpec {
    /// Host model (defaults mirror the paper's Opteron node).
    pub host: HostSpec,
    /// Rails in rail-id order (at least one).
    pub rails: Vec<NicSpec>,
}

impl Serialize for PlatformSpec {
    fn to_value(&self) -> Value {
        ser::object([("host", ser::v(&self.host)), ("rails", ser::v(&self.rails))])
    }
}

impl Deserialize for PlatformSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de::require_object(v, "platform")?;
        Ok(PlatformSpec {
            host: de::field_or(v, "host", HostSpec::default)?,
            rails: de::field(v, "rails")?,
        })
    }
}

impl PlatformSpec {
    /// Parse from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("platform config: {e}"))
    }

    /// Materialize and validate the platform.
    pub fn build(&self) -> Platform {
        Platform::new(
            self.host.build(),
            self.rails.iter().map(NicSpec::build).collect(),
        )
    }
}

/// Load a platform from a JSON file.
pub fn load_platform(path: &std::path::Path) -> Result<Platform, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(PlatformSpec::from_json(&text)?.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "host": { "name": "epyc", "memcpy_mbs": 12000, "bus_mbs": 6000, "cores": 2 },
        "rails": [
            { "name": "cx5-eth", "latency_ns": 1300, "bandwidth_mbs": 3100,
              "pio_threshold": 4096, "rdv_threshold": 65536 },
            { "name": "cx5-ib", "latency_ns": 900, "bandwidth_mbs": 2900 }
        ]
    }"#;

    #[test]
    fn full_config_roundtrip() {
        let spec = PlatformSpec::from_json(EXAMPLE).unwrap();
        let p = spec.build();
        assert_eq!(p.rail_count(), 2);
        assert_eq!(p.host.name, "epyc");
        assert_eq!(p.host.cores, 2);
        assert_eq!(p.rails[0].name, "cx5-eth");
        assert!((p.rails[0].link_bandwidth - 3100.0 * MB).abs() < 1.0);
        assert_eq!(p.rails[0].pio_threshold, 4096);
        // Defaults fill in for the second rail.
        assert_eq!(p.rails[1].pio_threshold, 8 * KIB);
        assert_eq!(p.rails[1].rdv_threshold, 32 * KIB);
        assert!((p.rails[1].pio_bandwidth - 2900.0 * 0.75 * MB).abs() < 1.0);
    }

    #[test]
    fn minimal_config() {
        let spec = PlatformSpec::from_json(
            r#"{ "rails": [ { "name": "x", "latency_ns": 1000, "bandwidth_mbs": 500 } ] }"#,
        )
        .unwrap();
        let p = spec.build();
        assert_eq!(p.rail_count(), 1);
        assert_eq!(p.host.name, "custom-host");
        assert_eq!(p.host.cores, 1);
    }

    #[test]
    fn bad_json_reports_context() {
        let err = PlatformSpec::from_json("{").unwrap_err();
        assert!(err.contains("platform config"));
    }

    #[test]
    fn spec_serializes_back() {
        let spec = PlatformSpec::from_json(EXAMPLE).unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let again = PlatformSpec::from_json(&text).unwrap();
        assert_eq!(again.rails.len(), 2);
    }

    #[test]
    fn built_platform_runs_an_engine() {
        // End-to-end: a JSON-defined platform drives the real engine.
        let p = PlatformSpec::from_json(EXAMPLE).unwrap().build();
        p.host.validate();
        for r in &p.rails {
            r.validate();
        }
        assert_eq!(p.rail(p.highest_bandwidth_rail()).name, "cx5-eth");
    }
}
