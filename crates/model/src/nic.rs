//! Per-rail NIC model.
//!
//! A [`NicModel`] captures everything the NewMadeleine engine can observe
//! about one network interface: how long an injection keeps the host CPU
//! (PIO) or only the NIC (DMA), the wire latency, the sustained link rate,
//! and the bookkeeping costs (per-packet overheads, polling).

use nmad_sim::{SimDuration, SimTime};

/// How a given payload is moved from host memory onto the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxMode {
    /// Programmed I/O: the host CPU writes the payload to the NIC doorbell
    /// region. Cheap to start, but the CPU is monopolized for the entire
    /// injection, so concurrent PIO on two rails serializes (paper §3.2).
    Pio,
    /// Eager DMA: the CPU programs a descriptor and the NIC pulls the
    /// payload; the transfer overlaps with computation and with other rails,
    /// subject to the shared I/O bus.
    EagerDma,
    /// Rendezvous: a request/ack handshake precedes a (possibly zero-copy)
    /// DMA of the full payload; used above [`NicModel::rdv_threshold`].
    Rendezvous,
}

/// Model of one network interface card and its driver stack.
///
/// User-defined rails can be loaded from JSON through
/// [`crate::config::PlatformSpec`].
#[derive(Clone, Debug)]
pub struct NicModel {
    /// Human-readable rail name (shows up in traces and figure legends).
    pub name: &'static str,
    /// One-way hardware latency: NIC-to-NIC time for a minimal packet.
    pub wire_latency: SimDuration,
    /// Sustained DMA link bandwidth in bytes/second.
    pub link_bandwidth: f64,
    /// Payloads strictly below this use PIO; at or above, DMA.
    pub pio_threshold: usize,
    /// Host-CPU injection rate for PIO transfers, bytes/second.
    pub pio_bandwidth: f64,
    /// Fixed CPU cost to start a PIO injection (doorbell, header build).
    pub pio_fixed: SimDuration,
    /// CPU cost to build and ring a DMA descriptor.
    pub dma_setup: SimDuration,
    /// Payloads at or above this use the rendezvous protocol.
    pub rdv_threshold: usize,
    /// Per-packet host software overhead on the send side (driver entry,
    /// header construction) — paid on the CPU for every packet regardless
    /// of mode.
    pub tx_overhead: SimDuration,
    /// Per-packet host software overhead on the receive side (event
    /// demultiplex, header parse, completion bookkeeping).
    pub rx_overhead: SimDuration,
    /// Cost of polling this NIC once for activity. The engine must poll
    /// every enabled rail, which is exactly the small penalty the paper
    /// observes in Figure 6 when the Myri-10G NIC is present but unused.
    pub poll_cost: SimDuration,
    /// Largest single packet the driver accepts (larger payloads must be
    /// split by the strategy or the rendezvous track).
    pub mtu: usize,
}

impl NicModel {
    /// Transmission mode for a payload of `bytes`.
    pub fn tx_mode(&self, bytes: usize) -> TxMode {
        if bytes >= self.rdv_threshold {
            TxMode::Rendezvous
        } else if bytes >= self.pio_threshold {
            TxMode::EagerDma
        } else {
            TxMode::Pio
        }
    }

    /// CPU time consumed injecting `bytes` via PIO.
    pub fn pio_injection_time(&self, bytes: usize) -> SimDuration {
        self.pio_fixed + SimDuration::for_bytes(bytes as u64, self.pio_bandwidth)
    }

    /// Pure serialization time of `bytes` at the DMA link rate (no bus
    /// contention — the fluid bus model handles that).
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        SimDuration::for_bytes(bytes as u64, self.link_bandwidth)
    }

    /// Analytic one-way time for an isolated eager (PIO) packet of `bytes`:
    /// send overhead + PIO injection + wire latency + receive overhead.
    /// Used by calibration tests and by the sampling module's seed tables.
    pub fn analytic_pio_oneway(&self, bytes: usize) -> SimDuration {
        self.tx_overhead + self.pio_injection_time(bytes) + self.wire_latency + self.rx_overhead
    }

    /// Analytic one-way time for an isolated DMA packet of `bytes`,
    /// assuming an uncontended bus.
    pub fn analytic_dma_oneway(&self, bytes: usize) -> SimDuration {
        self.tx_overhead
            + self.dma_setup
            + self.serialization_time(bytes)
            + self.wire_latency
            + self.rx_overhead
    }

    /// Analytic uncontended one-way time for `bytes`, picking the mode the
    /// driver would pick (rendezvous adds one extra control round trip).
    pub fn analytic_oneway(&self, bytes: usize) -> SimDuration {
        match self.tx_mode(bytes) {
            TxMode::Pio => self.analytic_pio_oneway(bytes),
            TxMode::EagerDma => self.analytic_dma_oneway(bytes),
            TxMode::Rendezvous => {
                // Request + ack are minimal PIO packets, then the bulk DMA.
                let handshake = self.analytic_pio_oneway(0) + self.analytic_pio_oneway(0);
                handshake + self.analytic_dma_oneway(bytes)
            }
        }
    }

    /// Effective bandwidth (MB/s, decimal) of an isolated `bytes`-sized
    /// transfer, from the analytic one-way time.
    pub fn analytic_bandwidth_mbs(&self, bytes: usize) -> f64 {
        let t = self.analytic_oneway(bytes).as_secs_f64();
        bytes as f64 / t / crate::MB
    }

    /// A "no-op probe" grant duration used by samplers: the cost of touching
    /// the NIC without transferring payload.
    pub fn probe_cost(&self) -> SimDuration {
        self.poll_cost
    }

    /// Validate internal consistency; call from platform constructors.
    pub fn validate(&self) {
        assert!(self.link_bandwidth > 0.0, "{}: link bandwidth", self.name);
        assert!(self.pio_bandwidth > 0.0, "{}: pio bandwidth", self.name);
        assert!(
            self.pio_threshold <= self.rdv_threshold,
            "{}: pio threshold {} must not exceed rdv threshold {}",
            self.name,
            self.pio_threshold,
            self.rdv_threshold
        );
        assert!(
            self.mtu >= self.rdv_threshold.max(1),
            "{}: mtu too small",
            self.name
        );
    }

    /// True if this NIC would be idle at `now` given its busy-until time
    /// (helper for drivers; the authoritative state lives in the runtime).
    pub fn would_be_idle(busy_until: SimTime, now: SimTime) -> bool {
        busy_until <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    #[test]
    fn mode_thresholds() {
        let nic = platform::myri_10g();
        assert_eq!(nic.tx_mode(0), TxMode::Pio);
        assert_eq!(nic.tx_mode(nic.pio_threshold - 1), TxMode::Pio);
        assert_eq!(nic.tx_mode(nic.pio_threshold), TxMode::EagerDma);
        assert_eq!(nic.tx_mode(nic.rdv_threshold - 1), TxMode::EagerDma);
        assert_eq!(nic.tx_mode(nic.rdv_threshold), TxMode::Rendezvous);
    }

    #[test]
    fn pio_time_scales_with_bytes() {
        let nic = platform::myri_10g();
        let small = nic.pio_injection_time(64);
        let large = nic.pio_injection_time(4096);
        assert!(large > small);
        // Fixed part dominates tiny payloads.
        assert!(nic.pio_injection_time(0) == nic.pio_fixed);
    }

    #[test]
    fn analytic_latency_matches_paper_targets() {
        // Paper §3.1: Myri-10G 2.8 us, Quadrics 1.7 us for minimal messages.
        let myri = platform::myri_10g();
        let quad = platform::quadrics_qm500();
        let t_myri = myri.analytic_pio_oneway(4).as_us_f64();
        let t_quad = quad.analytic_pio_oneway(4).as_us_f64();
        assert!(
            (t_myri - 2.8).abs() < 0.15,
            "Myri-10G 4B latency {t_myri} us != ~2.8 us"
        );
        assert!(
            (t_quad - 1.7).abs() < 0.15,
            "Quadrics 4B latency {t_quad} us != ~1.7 us"
        );
        // Quadrics must be the lower-latency rail (strategy §3.3 relies on it).
        assert!(t_quad < t_myri);
    }

    #[test]
    fn analytic_bandwidth_matches_paper_targets() {
        // Paper §3.1: ~1200 MB/s Myri-10G, ~850 MB/s Quadrics at 8 MB.
        let myri = platform::myri_10g();
        let quad = platform::quadrics_qm500();
        let bw_myri = myri.analytic_bandwidth_mbs(8 * crate::MIB);
        let bw_quad = quad.analytic_bandwidth_mbs(8 * crate::MIB);
        assert!(
            (bw_myri - 1200.0).abs() < 40.0,
            "Myri-10G 8MB bandwidth {bw_myri} MB/s != ~1200"
        );
        assert!(
            (bw_quad - 850.0).abs() < 30.0,
            "Quadrics 8MB bandwidth {bw_quad} MB/s != ~850"
        );
        assert!(bw_myri > bw_quad, "Myri must be the higher-bandwidth rail");
    }

    #[test]
    fn rendezvous_adds_handshake() {
        let nic = platform::myri_10g();
        let b = nic.rdv_threshold;
        let eager_like = nic.analytic_dma_oneway(b);
        let rdv = nic.analytic_oneway(b);
        assert!(rdv > eager_like, "rendezvous must cost a handshake");
    }

    #[test]
    fn presets_validate() {
        platform::myri_10g().validate();
        platform::quadrics_qm500().validate();
        platform::gige().validate();
        platform::sci_dolphin().validate();
    }

    #[test]
    fn would_be_idle_boundary() {
        let t = SimTime::from_ns(100);
        assert!(NicModel::would_be_idle(t, t));
        assert!(!NicModel::would_be_idle(t, SimTime::from_ns(99)));
    }
}
