//! Host (node) model: CPU costs, memcpy engine, shared I/O bus.

use nmad_sim::SimDuration;

/// Model of one compute node of the testbed.
#[derive(Clone, Debug)]
pub struct HostModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Sustained memory-copy bandwidth in bytes/second. The aggregation
    /// strategy copies segments into a contiguous staging buffer; the paper
    /// notes this overhead is "very low", which holds when memcpy is 2-3x
    /// the fastest link.
    pub memcpy_bandwidth: f64,
    /// Fixed CPU cost per copy operation (call + cache warmup).
    pub memcpy_fixed: SimDuration,
    /// Effective aggregate I/O bus capacity in bytes/second, shared by all
    /// concurrent DMA flows of this node. The paper quotes ~2 GB/s
    /// theoretical; the effective value is lower (protocol and arbitration
    /// overheads) and is what produces the 1675 MB/s two-rail plateau.
    pub bus_capacity: f64,
    /// CPU cost of one application-level submit (`pack`) call: queueing the
    /// request in the collect layer. NewMadeleine keeps this low by design —
    /// request processing is disconnected from the API call (paper §2).
    pub submit_cost: SimDuration,
    /// CPU cost of one optimizing-scheduler invocation (strategy decision
    /// over the backlog).
    pub sched_cost: SimDuration,
    /// Number of CPU cores the communication engine may use. The paper's
    /// 2007 implementation was single-threaded (`1`) even though the nodes
    /// were dual-core; §4 announces a multi-threaded version processing
    /// "parallel PIO transfers on multiprocessor machines" — set `2` to
    /// simulate that future-work design point.
    pub cores: usize,
}

impl HostModel {
    /// CPU time to copy `bytes` between host buffers.
    pub fn memcpy_time(&self, bytes: usize) -> SimDuration {
        self.memcpy_fixed + SimDuration::for_bytes(bytes as u64, self.memcpy_bandwidth)
    }

    /// Validate internal consistency.
    pub fn validate(&self) {
        assert!(
            self.memcpy_bandwidth > 0.0,
            "{}: memcpy bandwidth",
            self.name
        );
        assert!(self.bus_capacity > 0.0, "{}: bus capacity", self.name);
        assert!(self.cores >= 1, "{}: need at least one core", self.name);
    }

    /// This host with a different core count (future-work experiments).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }
}

#[cfg(test)]
mod tests {
    use crate::platform;

    #[test]
    fn memcpy_cost_is_low_relative_to_links() {
        let host = platform::opteron_node();
        let myri = platform::myri_10g();
        // Copying 8 KB must be much cheaper than sending it: the paper's
        // opportunistic aggregation relies on cheap copies.
        let copy = host.memcpy_time(8 * 1024).as_us_f64();
        let send = myri.analytic_pio_oneway(8 * 1024).as_us_f64();
        assert!(
            copy < send / 2.0,
            "memcpy ({copy} us) must be well below send cost ({send} us)"
        );
    }

    #[test]
    fn bus_sits_between_one_and_two_rails() {
        let host = platform::opteron_node();
        let myri = platform::myri_10g();
        let quad = platform::quadrics_qm500();
        // The bus must cap the two-rail sum (2050 MB/s) but exceed each
        // single rail, otherwise the multi-rail shape of Fig. 4/7 is lost.
        assert!(host.bus_capacity > myri.link_bandwidth);
        assert!(host.bus_capacity > quad.link_bandwidth);
        assert!(host.bus_capacity < myri.link_bandwidth + quad.link_bandwidth);
    }

    #[test]
    fn memcpy_time_monotonic() {
        let host = platform::opteron_node();
        assert!(host.memcpy_time(1024) < host.memcpy_time(64 * 1024));
        assert_eq!(host.memcpy_time(0), host.memcpy_fixed);
    }

    #[test]
    fn preset_validates() {
        platform::opteron_node().validate();
    }
}
