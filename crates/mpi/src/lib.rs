//! # nmad-mpi — a miniature MPI-like layer over NewMadeleine
//!
//! The paper's short-term plan was to "update our implementation of
//! MPICH-Madeleine so as to use the multi-rail capabilities of
//! NewMadeleine" (§4). This crate sketches that layer: an N-rank,
//! tag-matched message passing interface whose point-to-point transfers
//! ride the real engine (via [`nmad_transport_mem`]) — so every MPI
//! message benefits from aggregation and multi-rail splitting, and
//! messages from different communicators can share physical packets
//! (paper §4: segments "can be aggregated into the same physical packet
//! even if they belong to different logical channels, e.g. different MPI
//! communicators").
//!
//! Ranks live in one process (one per thread in tests); each pair of
//! ranks is linked by a dedicated two-endpoint fabric. Tags are carried
//! in a small framing segment in front of the payload; out-of-tag-order
//! receives are stashed, exactly like an MPI unexpected-message queue.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use bytes::Bytes;
use nmad_core::EngineConfig;
use nmad_model::Platform;
use nmad_transport_mem::{pair, Endpoint, FabricConfig};
use parking_lot::Mutex;

/// Communicator index (maps to a NewMadeleine logical channel).
pub type Comm = usize;
/// Message tag.
pub type Tag = u32;

/// The world communicator.
pub const COMM_WORLD: Comm = 0;

const FRAME_MAGIC: u32 = 0x4D50_4921; // "MPI!"

/// Configuration for building a world.
#[derive(Clone)]
pub struct WorldConfig {
    /// Node hardware model used for every rank link.
    pub platform: Platform,
    /// Engine configuration (strategy etc.).
    pub engine: EngineConfig,
    /// Number of communicators available (>= 1; `COMM_WORLD` is 0).
    pub comms: usize,
    /// Blocking-call timeout before panicking with a deadlock report.
    pub timeout: Duration,
}

impl WorldConfig {
    /// Defaults: paper platform, adaptive-split strategy, 2 communicators.
    pub fn new(platform: Platform, engine: EngineConfig) -> Self {
        WorldConfig {
            platform,
            engine,
            comms: 2,
            timeout: Duration::from_secs(30),
        }
    }
}

/// One rank of the world. Owns a dedicated fabric endpoint per peer.
pub struct Rank {
    /// This rank's index.
    pub rank: usize,
    /// World size.
    pub size: usize,
    peers: PeerTable,
    stash: Mutex<StashTable>,
    timeout: Duration,
}

/// Per-rank peer endpoint table.
type PeerTable = HashMap<usize, Endpoint>;

/// Handle to a non-blocking MPI send.
pub struct MpiRequest {
    inner: nmad_transport_mem::SendHandle,
}

impl MpiRequest {
    /// Block until local completion; true on success.
    pub fn wait(&self, timeout: Duration) -> bool {
        self.inner.wait(timeout)
    }
}
/// Unexpected-message queue: (source rank, communicator, tag) -> payloads.
type StashTable = HashMap<(usize, Comm, Tag), VecDeque<Vec<u8>>>;

/// Build an `n`-rank world. Returns one [`Rank`] per rank; hand each to
/// its own thread.
pub fn world(n: usize, config: WorldConfig) -> Vec<Rank> {
    assert!(n >= 2, "a world needs at least two ranks");
    let mut peers: Vec<PeerTable> = (0..n).map(|_| HashMap::new()).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let mut fc = FabricConfig::new(config.platform.clone(), config.engine.clone());
            fc.conns = config.comms.max(1);
            let (a, b) = pair(fc);
            peers[i].insert(j, a);
            peers[j].insert(i, b);
        }
    }
    peers
        .into_iter()
        .enumerate()
        .map(|(rank, peers)| Rank {
            rank,
            size: n,
            peers,
            stash: Mutex::new(HashMap::new()),
            timeout: config.timeout,
        })
        .collect()
}

fn frame_header(comm: Comm, tag: Tag) -> Bytes {
    let mut h = Vec::with_capacity(12);
    h.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    h.extend_from_slice(&(comm as u32).to_le_bytes());
    h.extend_from_slice(&tag.to_le_bytes());
    Bytes::from(h)
}

fn parse_frame(segments: &[Bytes]) -> (Comm, Tag, Vec<u8>) {
    let header = &segments[0];
    assert!(header.len() == 12, "malformed MPI frame header");
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    assert_eq!(magic, FRAME_MAGIC, "bad MPI frame magic");
    let comm = u32::from_le_bytes(header[4..8].try_into().unwrap()) as Comm;
    let tag = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let mut payload = Vec::new();
    for seg in &segments[1..] {
        payload.extend_from_slice(seg);
    }
    (comm, tag, payload)
}

impl Rank {
    fn peer(&self, other: usize) -> &Endpoint {
        assert!(other != self.rank, "cannot message self");
        self.peers
            .get(&other)
            .unwrap_or_else(|| panic!("rank {other} out of range (size {})", self.size))
    }

    /// Blocking tagged send to `to` on `comm`.
    pub fn send(&self, to: usize, comm: Comm, tag: Tag, data: &[u8]) {
        let ok = self.isend(to, comm, tag, data).wait(self.timeout);
        assert!(ok, "rank {}: send to {to} (tag {tag}) timed out", self.rank);
    }

    /// Non-blocking tagged send; completion is local (the engine accepted
    /// and injected the message).
    pub fn isend(&self, to: usize, comm: Comm, tag: Tag, data: &[u8]) -> MpiRequest {
        let ep = self.peer(to);
        let segments = vec![frame_header(comm, tag), Bytes::copy_from_slice(data)];
        MpiRequest {
            inner: ep.send(ep.conns()[comm], segments),
        }
    }

    /// Blocking tagged receive from `from` on `comm`.
    ///
    /// Messages arriving with other tags are stashed (the MPI
    /// unexpected-message queue) and matched by later receives.
    pub fn recv(&self, from: usize, comm: Comm, tag: Tag) -> Vec<u8> {
        if let Some(hit) = self.stash_pop(from, comm, tag) {
            return hit;
        }
        let ep = self.peer(from);
        loop {
            let msg = ep
                .recv(ep.conns()[comm])
                .wait(self.timeout)
                .unwrap_or_else(|| {
                    panic!(
                        "rank {}: recv from {from} (comm {comm}, tag {tag}) timed out",
                        self.rank
                    )
                });
            let (got_comm, got_tag, payload) = parse_frame(&msg.segments);
            debug_assert_eq!(got_comm, comm, "engine channels keep comms separate");
            if got_tag == tag {
                return payload;
            }
            self.stash
                .lock()
                .entry((from, comm, got_tag))
                .or_default()
                .push_back(payload);
        }
    }

    fn stash_pop(&self, from: usize, comm: Comm, tag: Tag) -> Option<Vec<u8>> {
        let mut stash = self.stash.lock();
        let q = stash.get_mut(&(from, comm, tag))?;
        let v = q.pop_front();
        if q.is_empty() {
            stash.remove(&(from, comm, tag));
        }
        v
    }

    /// Combined send+receive with the same peer (classic ping-pong step).
    pub fn sendrecv(&self, peer: usize, comm: Comm, tag: Tag, data: &[u8]) -> Vec<u8> {
        // Lower rank sends first; the transport is fully non-blocking
        // underneath so either order would work, but keeping a convention
        // makes traces readable.
        if self.rank < peer {
            self.send(peer, comm, tag, data);
            self.recv(peer, comm, tag)
        } else {
            let got = self.recv(peer, comm, tag);
            self.send(peer, comm, tag, data);
            got
        }
    }

    /// Broadcast from `root`: root passes `Some(data)`, everyone gets the
    /// payload. Linear algorithm (the paper's platform has 2 nodes; mesh
    /// worlds stay small here).
    pub fn bcast(&self, root: usize, comm: Comm, data: Option<&[u8]>) -> Vec<u8> {
        const BCAST_TAG: Tag = 0xB0A5;
        if self.rank == root {
            let data = data.expect("root must supply the broadcast payload");
            for r in 0..self.size {
                if r != self.rank {
                    self.send(r, comm, BCAST_TAG, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, comm, BCAST_TAG)
        }
    }

    /// Gather to `root`: returns `Some(vec-of-payloads by rank)` at root,
    /// `None` elsewhere.
    pub fn gather(&self, root: usize, comm: Comm, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        const GATHER_TAG: Tag = 0x6A77;
        if self.rank == root {
            let out: Vec<Vec<u8>> = (0..self.size)
                .map(|r| {
                    if r == self.rank {
                        data.to_vec()
                    } else {
                        self.recv(r, comm, GATHER_TAG)
                    }
                })
                .collect();
            Some(out)
        } else {
            self.send(root, comm, GATHER_TAG, data);
            None
        }
    }

    /// Barrier: linear gather-release through rank 0.
    pub fn barrier(&self, comm: Comm) {
        const BARRIER_TAG: Tag = 0xBAAA;
        if self.rank == 0 {
            for r in 1..self.size {
                let _ = self.recv(r, comm, BARRIER_TAG);
            }
            for r in 1..self.size {
                self.send(r, comm, BARRIER_TAG, b"go");
            }
        } else {
            self.send(0, comm, BARRIER_TAG, b"in");
            let _ = self.recv(0, comm, BARRIER_TAG);
        }
    }

    /// All-reduce (sum) of one f64: gather to 0, sum, broadcast.
    pub fn allreduce_sum(&self, comm: Comm, x: f64) -> f64 {
        let gathered = self.gather(0, comm, &x.to_le_bytes());
        let sum = gathered.map(|parts| {
            parts
                .iter()
                .map(|b| f64::from_le_bytes(b.as_slice().try_into().expect("8-byte f64")))
                .sum::<f64>()
        });
        let out = self.bcast(0, comm, sum.map(f64::to_le_bytes).as_ref().map(|b| &b[..]));
        f64::from_le_bytes(out.as_slice().try_into().expect("8-byte f64"))
    }

    /// Engine statistics of the link to `peer` (behaviour assertions).
    pub fn link_stats(&self, peer: usize) -> nmad_core::EngineStats {
        self.peer(peer).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_core::StrategyKind;
    use nmad_model::platform;
    use std::thread;

    fn mk_world(n: usize) -> Vec<Rank> {
        world(
            n,
            WorldConfig::new(
                platform::paper_platform(),
                EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
            ),
        )
    }

    /// Run a closure on every rank, each in its own thread.
    fn run_ranks(ranks: Vec<Rank>, f: impl Fn(&Rank) + Sync) {
        thread::scope(|s| {
            for r in &ranks {
                s.spawn(|| f(r));
            }
        });
    }

    #[test]
    fn two_rank_pingpong() {
        let ranks = mk_world(2);
        run_ranks(ranks, |r| {
            let peer = 1 - r.rank;
            let sent = format!("hello from {}", r.rank);
            let got = r.sendrecv(peer, COMM_WORLD, 7, sent.as_bytes());
            assert_eq!(got, format!("hello from {peer}").into_bytes());
        });
    }

    #[test]
    fn tag_matching_out_of_order() {
        let ranks = mk_world(2);
        run_ranks(ranks, |r| {
            if r.rank == 0 {
                r.send(1, COMM_WORLD, 2, b"second-tag");
                r.send(1, COMM_WORLD, 1, b"first-tag");
            } else {
                // Receive tag 1 first even though tag 2 arrived first.
                assert_eq!(r.recv(0, COMM_WORLD, 1), b"first-tag");
                assert_eq!(r.recv(0, COMM_WORLD, 2), b"second-tag");
            }
        });
    }

    #[test]
    fn communicators_do_not_cross() {
        let ranks = mk_world(2);
        run_ranks(ranks, |r| {
            if r.rank == 0 {
                r.send(1, 1, 5, b"on comm 1");
                r.send(1, COMM_WORLD, 5, b"on world");
            } else {
                assert_eq!(r.recv(0, COMM_WORLD, 5), b"on world");
                assert_eq!(r.recv(0, 1, 5), b"on comm 1");
            }
        });
    }

    #[test]
    fn large_transfer_uses_both_rails() {
        let ranks = mk_world(2);
        let payload: Vec<u8> = (0..(2 << 20)).map(|i| (i % 251) as u8).collect();
        run_ranks(ranks, |r| {
            if r.rank == 0 {
                r.send(1, COMM_WORLD, 9, &payload);
                let st = r.link_stats(1);
                assert!(st.rdv_handshakes >= 1);
            } else {
                let got = r.recv(0, COMM_WORLD, 9);
                assert_eq!(got, payload);
            }
        });
    }

    #[test]
    fn isend_overlaps_multiple_transfers() {
        let ranks = mk_world(2);
        run_ranks(ranks, |r| {
            if r.rank == 0 {
                // Launch four sends at once, then wait for all.
                let reqs: Vec<_> = (0..4u32)
                    .map(|i| r.isend(1, COMM_WORLD, i, &vec![i as u8; 50_000]))
                    .collect();
                for (i, q) in reqs.iter().enumerate() {
                    assert!(q.wait(Duration::from_secs(20)), "isend {i}");
                }
            } else {
                // Receive them in reverse tag order (stash exercises).
                for i in (0..4u32).rev() {
                    assert_eq!(r.recv(0, COMM_WORLD, i), vec![i as u8; 50_000]);
                }
            }
        });
    }

    #[test]
    fn three_rank_collectives() {
        let ranks = mk_world(3);
        run_ranks(ranks, |r| {
            // Barrier then broadcast then gather then allreduce.
            r.barrier(COMM_WORLD);
            let data = r.bcast(0, COMM_WORLD, (r.rank == 0).then_some(b"root-data"));
            assert_eq!(data, b"root-data");
            let mine = vec![r.rank as u8; 3];
            let gathered = r.gather(1, COMM_WORLD, &mine);
            if r.rank == 1 {
                let g = gathered.expect("root gets the gather");
                assert_eq!(g[0], vec![0u8; 3]);
                assert_eq!(g[1], vec![1u8; 3]);
                assert_eq!(g[2], vec![2u8; 3]);
            } else {
                assert!(gathered.is_none());
            }
            let total = r.allreduce_sum(COMM_WORLD, (r.rank + 1) as f64);
            assert_eq!(total, 6.0, "1+2+3");
        });
    }

    #[test]
    fn barrier_actually_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ranks = mk_world(3);
        let arrived = AtomicUsize::new(0);
        run_ranks(ranks, |r| {
            arrived.fetch_add(1, Ordering::SeqCst);
            r.barrier(COMM_WORLD);
            // After the barrier, everyone must have arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    #[should_panic(expected = "cannot message self")]
    fn self_send_rejected() {
        let ranks = mk_world(2);
        ranks[0].send(0, COMM_WORLD, 1, b"loopback");
    }
}
