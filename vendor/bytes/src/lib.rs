//! Offline stand-in for the `bytes` crate covering the subset this
//! workspace uses: cheaply-cloneable immutable byte buffers ([`Bytes`]),
//! a growable builder ([`BytesMut`]) and the little-endian `put_*`
//! methods of [`BufMut`]. Semantics match the real crate for this
//! subset; the zero-copy `slice` sharing is preserved via `Arc`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (copied here; the real crate borrows, but the
    /// observable behaviour is identical for an immutable buffer).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True when this handle is the only reference to the backing
    /// allocation (so [`Vec<u8>::from`] can reclaim it without copying).
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }
}

impl From<Bytes> for Vec<u8> {
    /// Recover the backing `Vec` without copying when this is the only
    /// handle to it (buffer-pool reclaim); falls back to a copy when the
    /// allocation is shared or the view is a proper sub-slice.
    fn from(b: Bytes) -> Vec<u8> {
        match Arc::try_unwrap(b.data) {
            Ok(mut v) => {
                v.truncate(b.end);
                if b.start > 0 {
                    v.drain(..b.start);
                }
                v
            }
            Err(data) => data[b.start..b.end].to_vec(),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Remove all bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Resize to `len` bytes, filling new space with `value`.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.buf.resize(len, value);
    }

    /// Split off and return the first `at` bytes, leaving the remainder
    /// in `self`. Mirrors `bytes::BytesMut::split_to`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_to out of bounds");
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }

    /// Capacity of the backing allocation.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// The bytes as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(m: BytesMut) -> Vec<u8> {
        m.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Write-side trait: the little-endian integer and slice appenders used
/// by the wire codec.
pub trait BufMut {
    /// Append a raw slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..).len(), 3);
        assert_eq!(b.slice(2..=2)[..], [3]);
    }

    #[test]
    fn put_helpers_are_little_endian() {
        let mut m = BytesMut::new();
        m.put_u16_le(0x0102);
        m.put_u8(0xFF);
        assert_eq!(&m.freeze()[..], &[0x02, 0x01, 0xFF]);
    }

    #[test]
    fn split_to_takes_front() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1, 2, 3, 4, 5]);
        let front = m.split_to(2);
        assert_eq!(&front[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4, 5]);
        let all = m.split_to(3);
        assert_eq!(&all[..], &[3, 4, 5]);
        assert!(m.is_empty());
    }

    #[test]
    fn vec_from_unique_bytes_reclaims_without_copy() {
        let v = vec![7u8; 32];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert!(b.is_unique());
        let back: Vec<u8> = b.into();
        assert_eq!(back.len(), 32);
        assert_eq!(back.as_ptr(), ptr, "unique handle must reuse allocation");
    }

    #[test]
    fn vec_from_shared_bytes_copies() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let b2 = b.clone();
        assert!(!b.is_unique());
        let v: Vec<u8> = b.into();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(&b2[..], &[1, 2, 3]);
    }

    #[test]
    fn vec_from_sliced_bytes_honors_view() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]).slice(1..4);
        let v: Vec<u8> = b.into();
        assert_eq!(v, vec![2, 3, 4]);
    }
}
