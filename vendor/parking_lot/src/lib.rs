//! Offline stand-in for `parking_lot` backed by `std::sync`. Covers the
//! subset this workspace uses: poison-free `Mutex`/`lock()`, `Condvar`
//! with `wait`/`wait_for`, and `RwLock`. Lock poisoning is translated to
//! the parking_lot behaviour (a poisoned lock just keeps working).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive (never poisons).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take ownership of the
    // underlying std guard; always Some outside of that window.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Reader-writer lock (never poisons).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let res = {
            let mut g = pair.0.lock();
            pair.1.wait_for(&mut g, Duration::from_millis(10))
        };
        assert!(res.timed_out());

        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let r = pair.1.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "missed wakeup");
        }
        drop(g);
        t.join().unwrap();
    }
}
