//! Offline stand-in for `criterion`: runs each benchmark closure for a
//! short, fixed measurement window and prints median time per iteration
//! (and throughput where declared). No statistics beyond the median, no
//! HTML reports — just enough to compare hot paths offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Measurement entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count (accepted for API parity; the stub's
    /// fixed measurement window ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name.into()),
            self.throughput,
            f,
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Timing handle: call [`Bencher::iter`] with the code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: grow the batch until one batch takes >= 5 ms.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    // Measure: take the best of a few batches (median-ish, robust to
    // one-off scheduling noise).
    let mut best = per_iter;
    for _ in 0..5 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed.as_secs_f64() / iters as f64);
    }
    let time = format_time(best);
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbs = n as f64 / best / 1e6;
            println!("{name:<44} {time:>12}/iter  {mbs:>10.1} MB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / best;
            println!("{name:<44} {time:>12}/iter  {eps:>10.0} elem/s");
        }
        None => println!("{name:<44} {time:>12}/iter"),
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
