//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical full-range strategy for a type (`any::<u32>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize);

macro_rules! arb_sint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
arb_sint!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Acceptable length specifications for [`vec`].
pub trait SizeRange {
    /// Draw a length.
    fn sample(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for usize {
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for vectors with element strategy `S` and a length range.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let v = (1u16..=8).generate(&mut rng);
            assert!((1..=8).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let n = vec(any::<u8>(), 2usize..5).generate(&mut rng).len();
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let s = crate::prop_oneof![0u32..10, 100u32..110, (200u32..210).prop_map(|v| v)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.generate(&mut rng) {
                v if v < 10 => seen[0] = true,
                v if (100..110).contains(&v) => seen[1] = true,
                v if (200..210).contains(&v) => seen[2] = true,
                v => panic!("out-of-range value {v}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
