//! Test configuration and the deterministic RNG behind value generation.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps offline CI quick while
        // still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64/xorshift generator seeded from the test name,
/// so every run of a given test sees the same case sequence.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h | 1, // never zero
        }
    }

    /// Next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::for_test("unit");
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
