//! Offline stand-in for `proptest` covering the subset this workspace
//! uses: the `proptest!` macro, `Strategy` with `prop_map`/`boxed`,
//! integer/float range strategies, tuples, `any::<T>()`,
//! `prop::collection::vec`, `prop_oneof!` and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test RNG (seeded from the test name), failing cases
//! are not shrunk, and `prop_assume!` skips the case instead of
//! resampling. Failure output prints the case index and the assertion
//! message so a failure is still reproducible by rerunning the test.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    pub use crate::strategy::vec;
}

pub mod num {
    //! Numeric helpers (namespace parity with the real crate).
}

pub mod prelude {
    //! Everything a proptest-based test file imports.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    // `prop::collection::vec(...)`, `prop::num`, ... resolve through this
    // crate-root alias exactly as in the real prelude.
    pub use crate as prop;
}

/// The body of a `proptest!`-generated test: runs `cases` deterministic
/// samples of the property closure, panicking on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, cfg.cases, stringify!($name), msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure aborts only the current case with a
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (The real crate resamples; skipping keeps determinism and is safe for
/// the preconditions used in this workspace.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
