//! Offline stand-in for `crossbeam-channel` covering the subset this
//! workspace uses: unbounded MPMC channels with `send`, `try_recv`,
//! `recv` and `recv_timeout`, with disconnection detection when all
//! senders or all receivers drop.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Chan<T> {
    queue: Mutex<ChanState<T>>,
    cv: Condvar,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders dropped and the queue is drained.
    Disconnected,
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(ChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cv: Condvar::new(),
    });
    (
        Sender { chan: chan.clone() },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.chan.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.chan.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until a message arrives, every sender is gone, or the
    /// timeout elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .chan
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// True if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_try_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            tx.send(1u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
        t.join().unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
