//! Offline stand-in for `serde_json`: a strict JSON parser and printer
//! over the vendored `serde` value tree. Covers `from_str`, `to_string`,
//! `to_string_pretty` and `to_vec_pretty`.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parse or conversion failure, with a line/column position for syntax
/// errors.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Render any [`Serialize`] type as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Render any [`Serialize`] type as indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    out.push('\n');
    Ok(out)
}

/// Render any [`Serialize`] type as indented JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(v: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(v).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that reparses
                // exactly; integral floats come out as integers, which is
                // valid JSON and numerically identical.
                out.push_str(&f.to_string());
            } else {
                // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(n * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are unsupported; the repo's
                            // configs are plain ASCII/BMP.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value = from_str(
            r#"{ "a": [1, -2, 3.5], "b": { "c": "x\n", "d": true }, "e": null }"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Value::U64(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1], Value::I64(-2));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"name":"epyc","rate":12.5,"tags":["a","b"]}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn syntax_error_has_position() {
        let err = from_str::<Value>("{\n  \"a\": }").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let again: Value = from_str(&pretty).unwrap();
        assert_eq!(again, v);
    }
}
