//! Offline stand-in for `serde`. Instead of the real crate's
//! serializer/deserializer visitors (which need the `serde_derive` proc
//! macro, unavailable offline), this exposes a small value-tree model:
//! types convert to and from [`Value`], and `serde_json` renders that
//! tree as JSON. Structs implement the traits by hand — see
//! `nmad-model`'s `config.rs` for the idiom.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed serialization tree (what `serde_json::Value` is
/// in the real ecosystem, hoisted here so `Serialize` can target it).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order preserved for readable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer view (accepts any numeric representation that fits).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Float view (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure with a human-readable path.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// A "field X: ..." error.
    pub fn at(field: &str, inner: DeError) -> DeError {
        DeError(format!("{field}: {}", inner.0))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

/// Conversion into the serialization tree.
pub trait Serialize {
    /// Render `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the serialization tree.
pub trait Deserialize: Sized {
    /// Build `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range for i64")))?,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| DeError(format!("[{i}]: {}", e.0))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

/// Helpers for hand-written struct impls.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Required field of an object.
    pub fn field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, DeError> {
        match obj.get(name) {
            Some(v) => T::from_value(v).map_err(|e| DeError::at(name, e)),
            None => Err(DeError(format!("missing field `{name}`"))),
        }
    }

    /// Optional field falling back to a default (the `#[serde(default)]`
    /// idiom).
    pub fn field_or<T: Deserialize>(
        obj: &Value,
        name: &str,
        default: impl FnOnce() -> T,
    ) -> Result<T, DeError> {
        match obj.get(name) {
            Some(Value::Null) | None => Ok(default()),
            Some(v) => T::from_value(v).map_err(|e| DeError::at(name, e)),
        }
    }

    /// Fail unless the value is an object.
    pub fn require_object(v: &Value, what: &str) -> Result<(), DeError> {
        match v {
            Value::Object(_) => Ok(()),
            other => Err(DeError(format!(
                "expected {what} object, found {}",
                other.kind()
            ))),
        }
    }
}

/// Helpers for hand-written `Serialize` impls.
pub mod ser {
    use super::{Serialize, Value};

    /// Build an object value from named fields.
    pub fn object<const N: usize>(fields: [(&str, Value); N]) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Shorthand: serialize a field value.
    pub fn v<T: Serialize + ?Sized>(x: &T) -> Value {
        x.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn field_helpers() {
        let obj = ser::object([("a", Value::U64(1))]);
        assert_eq!(de::field::<u64>(&obj, "a").unwrap(), 1);
        assert_eq!(de::field_or(&obj, "b", || 9u64).unwrap(), 9);
        assert!(de::field::<u64>(&obj, "b").is_err());
    }
}
