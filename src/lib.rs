//! # newmadeleine-rs
//!
//! A from-scratch Rust reproduction of the system described in:
//!
//! > Olivier Aumage, Élisabeth Brunet, Guillaume Mercier, Raymond Namyst.
//! > *High-Performance Multi-Rail Support with the NewMadeleine
//! > Communication Library.* HCW 2007 (with IPDPS 2007).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`model`] — NIC / host / platform hardware models calibrated to the
//!   paper's testbed (Myri-10G + Quadrics QM500 over a ~2 GB/s I/O bus).
//! * [`wire`] — packet wire format, aggregation containers, chunk splitting
//!   and out-of-order reassembly.
//! * [`core`] — the NewMadeleine engine proper: collect layer (pack/unpack
//!   message building), pluggable optimizing schedulers (strategies), and
//!   the NIC-activity-driven transmit layer.
//! * [`runtime_sim`] — binds the engine to the simulator; ping-pong and
//!   sweep executors that regenerate the paper's figures.
//! * [`transport_mem`] — a real multi-threaded in-process transport proving
//!   the engine also runs outside the simulator.
//! * [`transport_tcp`] — the engine over real TCP sockets (the paper's
//!   legacy socket-API driver), usable across processes.
//! * [`mpi`] — a miniature MPI-like layer on top of the public API.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use bytes;
pub use nmad_core as core;
pub use nmad_model as model;
pub use nmad_mpi as mpi;
pub use nmad_runtime_sim as runtime_sim;
pub use nmad_sim as sim;
pub use nmad_transport_mem as transport_mem;
pub use nmad_transport_tcp as transport_tcp;
pub use nmad_wire as wire;
