//! Side-by-side comparison of every scheduling strategy of the paper, at
//! representative message sizes — the paper's §3 narrative in one table.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::{run_pingpong, sample_platform, PingPongSpec};

fn main() {
    let platform = platform::paper_platform();
    let tables = sample_platform(&platform);

    let strategies = [
        ("single Myri-10G", StrategyKind::SingleRail(0)),
        ("single Quadrics", StrategyKind::SingleRail(1)),
        ("greedy (§3.2)", StrategyKind::Greedy),
        ("aggregate (§3.3)", StrategyKind::AggregateEager),
        ("iso-split", StrategyKind::IsoSplit),
        ("adaptive (§3.4)", StrategyKind::AdaptiveSplit),
    ];
    // (label, total size, segments)
    let workloads = [
        ("4 B x1", 4usize, 1usize),
        ("1 KiB x4", 1 << 10, 4),
        ("16 KiB x2", 16 << 10, 2),
        ("256 KiB x1", 256 << 10, 1),
        ("8 MiB x1", 8 << 20, 1),
        ("8 MiB x2", 8 << 20, 2),
    ];

    print!("{:<18}", "strategy");
    for (wl, _, _) in &workloads {
        print!(" {wl:>12}");
    }
    println!();
    println!("{}", "-".repeat(18 + workloads.len() * 13));

    for (label, kind) in strategies {
        print!("{label:<18}");
        for &(_, size, segs) in &workloads {
            let mut spec =
                PingPongSpec::new(platform.clone(), EngineConfig::with_strategy(kind), size)
                    .with_segments(segs);
            if matches!(kind, StrategyKind::AdaptiveSplit) {
                spec = spec.with_tables(tables.clone());
            }
            let r = run_pingpong(&spec);
            // Small workloads print µs, large print MB/s.
            if size <= 16 << 10 {
                print!(" {:>10.2}us", r.one_way.as_us_f64());
            } else {
                print!(" {:>10.0}MB", r.bandwidth_mbs);
            }
        }
        println!();
    }

    println!(
        "\nReading guide: small messages want the Quadrics latency floor (aggregate\n\
         and adaptive get it, plus a poll cost for the idle Myri NIC); large\n\
         messages want both rails (greedy ~1675 MB/s equal-split plateau,\n\
         adaptive ~1850+ MB/s with sampled ratios under the 1950 MB/s bus)."
    );
}
