//! The engine over real TCP sockets — the paper's "legacy socket API on
//! top of TCP/IP" driver (§2), with two sockets acting as two rails.
//!
//! ```text
//! cargo run --release --example tcp_transfer
//! ```
//!
//! A large message is striped over both sockets by the adaptive strategy
//! (poor man's multi-rail); integrity is verified end to end with CRCs.

use std::time::{Duration, Instant};

use newmadeleine::bytes::Bytes;
use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::sim::Xoshiro256StarStar;
use newmadeleine::transport_tcp::{pair_localhost, TcpConfig};

fn main() {
    let (server, client) = pair_localhost(TcpConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
    ))
    .expect("localhost TCP pair");
    let conn = server.conns()[0];
    let timeout = Duration::from_secs(30);

    let mut rng = Xoshiro256StarStar::new(1973);
    let mut payload = vec![0u8; 4 << 20];
    rng.fill_bytes(&mut payload);

    let start = Instant::now();
    let recv = client.recv(conn);
    let send = server.send(conn, vec![Bytes::from(payload.clone())]);
    assert!(send.wait(timeout), "send timed out");
    let msg = recv.wait(timeout).expect("recv timed out");
    assert_eq!(msg.segments[0].as_ref(), payload.as_slice());
    let elapsed = start.elapsed();

    let st = server.stats();
    println!(
        "{} bytes over 2 real TCP sockets in {:?} ({:.0} MB/s wall)",
        payload.len(),
        elapsed,
        payload.len() as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "rendezvous: {}, chunks: {}, socket shares: {:.1}% / {:.1}%",
        st.rdv_handshakes,
        st.chunks_sent,
        100.0 * st.rail_share(0),
        100.0 * st.rail_share(1)
    );
    println!(
        "rx integrity: {} CRC errors, {} socket errors",
        client.rx_errors(),
        client.io_errors()
    );
}
