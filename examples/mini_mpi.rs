//! A miniature MPI application over NewMadeleine: 3 ranks in one process,
//! tag matching, collectives, and a large multi-rail transfer — the
//! paper's §4 outlook ("update MPICH-Madeleine to use the multi-rail
//! capabilities") in miniature.
//!
//! ```text
//! cargo run --release --example mini_mpi
//! ```

use std::thread;

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::mpi::{world, WorldConfig, COMM_WORLD};

fn main() {
    let ranks = world(
        3,
        WorldConfig::new(
            platform::paper_platform(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
        ),
    );

    thread::scope(|s| {
        for r in &ranks {
            s.spawn(move || {
                // Phase 1: all-reduce a per-rank value.
                let total = r.allreduce_sum(COMM_WORLD, (r.rank + 1) as f64);
                assert_eq!(total, 6.0);
                if r.rank == 0 {
                    println!("allreduce: sum of ranks+1 = {total}");
                }
                r.barrier(COMM_WORLD);

                // Phase 2: rank 0 broadcasts a parameter blob.
                let params = r.bcast(
                    0,
                    COMM_WORLD,
                    (r.rank == 0).then_some(&b"simulation-parameters-v1"[..]),
                );
                assert_eq!(params, b"simulation-parameters-v1");

                // Phase 3: a large halo exchange between ranks 0 and 1,
                // which rides both physical rails underneath.
                if r.rank == 0 {
                    let halo: Vec<u8> = (0..(2 << 20)).map(|i| (i % 253) as u8).collect();
                    r.send(1, COMM_WORLD, 42, &halo);
                    let st = r.link_stats(1);
                    println!(
                        "halo exchange: {} rendezvous, rail shares {:.1}% / {:.1}%",
                        st.rdv_handshakes,
                        100.0 * st.rail_share(0),
                        100.0 * st.rail_share(1)
                    );
                } else if r.rank == 1 {
                    let halo = r.recv(0, COMM_WORLD, 42);
                    assert_eq!(halo.len(), 2 << 20);
                    assert!(halo.iter().enumerate().all(|(i, &b)| b == (i % 253) as u8));
                    println!("rank 1: halo verified ({} bytes)", halo.len());
                }

                // Phase 4: gather a small result at rank 2.
                let gathered = r.gather(2, COMM_WORLD, &[r.rank as u8 + 10]);
                if let Some(parts) = gathered {
                    println!("rank 2 gathered: {parts:?}");
                    assert_eq!(parts, vec![vec![10], vec![11], vec![12]]);
                }
                r.barrier(COMM_WORLD);
            });
        }
    });

    println!("mini-MPI run complete: collectives + multi-rail point-to-point all verified.");
}
