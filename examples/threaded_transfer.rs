//! The engine on real threads: transfer randomized payloads through the
//! in-process multi-rail fabric (no simulator involved) and verify
//! integrity end-to-end.
//!
//! ```text
//! cargo run --release --example threaded_transfer
//! ```

use std::time::{Duration, Instant};

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::sim::Xoshiro256StarStar;
use newmadeleine::transport_mem::{pair, FabricConfig};

fn main() {
    let cfg = FabricConfig::new(
        platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
    );
    let (alice, bob) = pair(cfg);
    let conn = alice.conns()[0];
    let timeout = Duration::from_secs(30);

    let mut rng = Xoshiro256StarStar::new(2007);
    let sizes = [100usize, 10_000, 1 << 20, 4 << 20];
    let start = Instant::now();
    let mut total = 0usize;

    for (i, &size) in sizes.iter().enumerate() {
        let mut payload = vec![0u8; size];
        rng.fill_bytes(&mut payload);
        let recv = bob.recv(conn);
        let send = alice.send(
            conn,
            vec![newmadeleine::bytes::Bytes::from(payload.clone())],
        );
        assert!(send.wait(timeout), "send {i} timed out");
        let msg = recv.wait(timeout).expect("recv timed out");
        assert_eq!(
            msg.segments[0].as_ref(),
            payload.as_slice(),
            "integrity check failed for message {i}"
        );
        total += size;
        println!("message {i}: {size:>9} bytes transferred and verified");
    }

    let stats = alice.stats();
    println!(
        "\n{total} bytes in {:?} across {} packets",
        start.elapsed(),
        stats.total_packets()
    );
    for (i, rail) in stats.rails.iter().enumerate() {
        println!(
            "  rail{i}: {:>3} data packets, {:>9} payload bytes ({:>4.1}%)",
            rail.packets,
            rail.payload_bytes,
            100.0 * stats.rail_share(i)
        );
    }
    println!(
        "  rendezvous: {}, chunks: {}, CRC errors seen by peer: {}",
        stats.rdv_handshakes,
        stats.chunks_sent,
        bob.rx_errors()
    );
    println!("\nSame engine, same wire format as the simulator — but on live threads.");
}
