//! Model *your* cluster: define a platform in JSON and run the paper's
//! strategies on it.
//!
//! ```text
//! cargo run --release --example custom_platform [platform.json]
//! ```
//!
//! Without an argument, a built-in description of a modern dual-port node
//! (two ConnectX-5-class rails on a PCIe-4 host) is used — the same
//! engine and strategies, thirty times the bandwidth.

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::PlatformSpec;
use newmadeleine::runtime_sim::{run_pingpong, PingPongSpec};

const MODERN_NODE: &str = r#"{
  "host": { "name": "pcie4-node", "memcpy_mbs": 16000, "bus_mbs": 22000, "cores": 2 },
  "rails": [
    { "name": "cx5-a", "latency_ns": 900,  "bandwidth_mbs": 11500,
      "pio_threshold": 4096, "rdv_threshold": 65536 },
    { "name": "cx5-b", "latency_ns": 1100, "bandwidth_mbs": 10000,
      "pio_threshold": 4096, "rdv_threshold": 65536 }
  ]
}"#;

fn main() {
    let json = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => MODERN_NODE.to_string(),
    };
    let platform = PlatformSpec::from_json(&json)
        .expect("valid platform JSON")
        .build();

    println!(
        "platform: {} ({} rails)",
        platform.host.name,
        platform.rail_count()
    );
    for (i, r) in platform.rails.iter().enumerate() {
        println!(
            "  rail{i} {:<10} lat {:>5.2} us  link {:>7.0} MB/s",
            r.name,
            r.analytic_pio_oneway(0).as_us_f64(),
            r.link_bandwidth / 1e6
        );
    }

    println!(
        "\n{:<18} {:>12} {:>12} {:>12}",
        "strategy", "4B (us)", "64K (MB/s)", "8M (MB/s)"
    );
    for kind in [
        StrategyKind::SingleRail(0),
        StrategyKind::Greedy,
        StrategyKind::AggregateEager,
        StrategyKind::AdaptiveSplit,
    ] {
        let run = |size: usize| {
            run_pingpong(&PingPongSpec::new(
                platform.clone(),
                EngineConfig::with_strategy(kind),
                size,
            ))
        };
        let lat = run(4).one_way.as_us_f64();
        let mid = run(64 << 10).bandwidth_mbs;
        let big = run(8 << 20).bandwidth_mbs;
        println!("{:<18} {lat:>12.2} {mid:>12.0} {big:>12.0}", kind.label());
    }
    println!(
        "\nSame engine, same strategies — the hardware model is just data.\n\
         Pass a JSON file to model your own cluster (see the docs of\n\
         newmadeleine::model::config for the schema)."
    );
}
