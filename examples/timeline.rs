//! Visualize the overlap the strategies create: an ASCII Gantt chart of
//! CPU and rail activity during one transfer, for the greedy strategy
//! below and above the PIO threshold.
//!
//! ```text
//! cargo run --release --example timeline
//! ```
//!
//! Below 16 KiB total, the two PIO injections serialize on the single CPU
//! lane (the §3.2 effect); above it the two DMA flows overlap on both
//! rails while the CPU stays almost idle.

use newmadeleine::bytes::Bytes;
use newmadeleine::core::request::{RecvId, SendId};
use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::world::{AppLogic, NodeApi, SimWorld};
use newmadeleine::wire::reassembly::MessageAssembly;

struct Sender {
    payloads: Vec<Bytes>,
}
impl AppLogic for Sender {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.submit_send(0, self.payloads.clone());
    }
    fn on_send_complete(&mut self, _s: SendId, _api: &mut NodeApi<'_>) {}
}

struct Receiver;
impl AppLogic for Receiver {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.post_recv(0);
    }
    fn on_recv_complete(&mut self, _r: RecvId, _m: MessageAssembly, _api: &mut NodeApi<'_>) {}
}

fn show(total: usize) {
    let seg = total / 2;
    let payloads = vec![Bytes::from(vec![1u8; seg]), Bytes::from(vec![2u8; seg])];
    let mut world = SimWorld::new(
        &platform::paper_platform(),
        EngineConfig::with_strategy(StrategyKind::Greedy),
        Sender { payloads },
        Receiver,
    );
    world.open_conn();
    world.enable_timeline();
    world.run(1_000_000);
    println!(
        "\n=== greedy, 2 segments x {seg} B (total {total} B) ===\n{}",
        world.timeline.as_ref().unwrap().render(72)
    );
}

fn main() {
    println!(
        "Lanes: nX.cpu = host CPU of node X; nX.railY = NIC Y of node X.\n\
         Watch how sub-threshold PIO serializes on n0.cpu, while large DMA\n\
         transfers overlap on both rails."
    );
    show(4 << 10); // 2 x 2 KiB: PIO, serialized on the CPU
    show(1 << 20); // 2 x 512 KiB: rendezvous DMA, overlapping rails
}
