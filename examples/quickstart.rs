//! Quickstart: send one message across two heterogeneous rails.
//!
//! Builds the paper's platform (Myri-10G + Quadrics QM500 on an Opteron
//! node), runs the final adaptive-split strategy on a simulated two-node
//! link, and prints what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::{run_pingpong, PingPongSpec};

fn main() {
    let platform = platform::paper_platform();
    println!("platform: {} rails", platform.rail_count());
    for (i, r) in platform.rails.iter().enumerate() {
        println!(
            "  rail{i}: {:<16} latency {:>6.2} us  link {:>6.0} MB/s",
            r.name,
            r.analytic_pio_oneway(0).as_us_f64(),
            r.link_bandwidth / 1e6
        );
    }

    for (what, size) in [("small (64 B)", 64usize), ("large (8 MiB)", 8 << 20)] {
        let spec = PingPongSpec::new(
            platform.clone(),
            EngineConfig::with_strategy(StrategyKind::AdaptiveSplit),
            size,
        );
        let r = run_pingpong(&spec);
        println!("\n{what} message, adaptive-split strategy:");
        println!("  one-way time : {:>10.2} us", r.one_way.as_us_f64());
        println!("  bandwidth    : {:>10.2} MB/s", r.bandwidth_mbs);
        for (i, rail) in r.sender_stats.rails.iter().enumerate() {
            println!(
                "  rail{i}: {:>3} packets, {:>9} payload bytes ({:>4.1}% of traffic)",
                rail.packets,
                rail.payload_bytes,
                100.0 * r.sender_stats.rail_share(i)
            );
        }
        println!(
            "  rendezvous handshakes: {}, chunks: {}, aggregates: {}",
            r.sender_stats.rdv_handshakes,
            r.sender_stats.chunks_sent,
            r.sender_stats.aggregates_built
        );
    }

    println!(
        "\nThe small message rides the low-latency rail (Quadrics); the large one is\n\
         stripped across both rails with sampled ratios — the paper's §3.4 strategy."
    );
}
