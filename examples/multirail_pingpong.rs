//! The paper's benchmark as a CLI: ping-pong over the simulated two-rail
//! platform with a chosen strategy and segment count.
//!
//! ```text
//! cargo run --release --example multirail_pingpong -- [strategy] [segments]
//!   strategy: single-myri | single-quadrics | greedy | aggregate | adaptive | iso
//!   segments: 1, 2, 4, ...
//! ```
//!
//! Prints the latency ladder (4 B – 32 KiB) and the bandwidth ladder
//! (32 KiB – 8 MiB) like the paper's plots.

use newmadeleine::core::{EngineConfig, StrategyKind};
use newmadeleine::model::platform;
use newmadeleine::runtime_sim::sweep::{bandwidth_sizes, latency_sizes};
use newmadeleine::runtime_sim::{run_pingpong, sample_platform, PingPongSpec};

fn parse_strategy(name: &str) -> StrategyKind {
    match name {
        "single-myri" => StrategyKind::SingleRail(0),
        "single-quadrics" => StrategyKind::SingleRail(1),
        "greedy" => StrategyKind::Greedy,
        "aggregate" => StrategyKind::AggregateEager,
        "adaptive" => StrategyKind::AdaptiveSplit,
        "iso" => StrategyKind::IsoSplit,
        other => {
            eprintln!("unknown strategy '{other}', using adaptive");
            StrategyKind::AdaptiveSplit
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = parse_strategy(args.get(1).map(String::as_str).unwrap_or("adaptive"));
    let segments: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);

    let platform = platform::paper_platform();
    let config = EngineConfig::with_strategy(kind);
    println!(
        "strategy = {}, segments = {segments}, platform = Myri-10G + Quadrics",
        kind.label()
    );

    // The adaptive strategy uses init-time sampling, like the real library.
    let tables = if kind == StrategyKind::AdaptiveSplit {
        println!("sampling rails (init-time, paper §3.4)...");
        Some(sample_platform(&platform))
    } else {
        None
    };

    let run = |size: usize| {
        let mut spec =
            PingPongSpec::new(platform.clone(), config.clone(), size).with_segments(segments);
        if let Some(t) = &tables {
            spec = spec.with_tables(t.clone());
        }
        run_pingpong(&spec)
    };

    println!("\n{:>10} {:>14} {:>14}", "size", "one-way (us)", "MB/s");
    for &size in latency_sizes().iter() {
        if (size as usize) < segments {
            continue;
        }
        let r = run(size as usize);
        println!(
            "{:>10} {:>14.2} {:>14.2}",
            size,
            r.one_way.as_us_f64(),
            r.bandwidth_mbs
        );
    }
    for &size in bandwidth_sizes().iter().skip(1) {
        let r = run(size as usize);
        println!(
            "{:>10} {:>14.2} {:>14.2}",
            size,
            r.one_way.as_us_f64(),
            r.bandwidth_mbs
        );
    }
}
