# Render the regenerated paper figures from the CSV dumps.
#
#   cargo bench --workspace          # writes target/figures/*.csv
#   gnuplot docs/plot_figures.gp     # writes target/figures/*.png
#
# The axes mirror the paper: log2 sizes, log2 transfer times (latency
# panels), linear-ish bandwidth panels with log2 sizes.

set datafile separator ','
set terminal pngcairo size 900,600 font ',10'
set key left top
set grid

set logscale x 2
set format x "%.0s%cB"

do for [fig in "fig2 fig3 fig4 fig5 fig6"] {
    lat = sprintf('target/figures/%s_latency.csv', fig)
    set output sprintf('target/figures/%s_latency.png', fig)
    set title sprintf('%s — transfer time', fig)
    set ylabel 'one-way time (us)'
    set logscale y 2
    stats lat skip 1 nooutput
    ncols = STATS_columns
    plot for [i=2:ncols] lat using 1:i with linespoints title columnheader(i)
    unset logscale y
}

do for [fig in "fig2 fig3 fig4 fig5 fig7 three_rail"] {
    bw = sprintf('target/figures/%s_bandwidth.csv', fig)
    set output sprintf('target/figures/%s_bandwidth.png', fig)
    set title sprintf('%s — bandwidth', fig)
    set ylabel 'bandwidth (MB/s)'
    set logscale y 2
    stats bw skip 1 nooutput
    ncols = STATS_columns
    plot for [i=2:ncols] bw using 1:i with linespoints title columnheader(i)
    unset logscale y
}
